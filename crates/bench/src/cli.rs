//! The shared command-line front end for every `penelope-bench` binary.
//!
//! All eleven binaries funnel through [`run_main`]: flag parsing, the
//! scale/fault environment variables, the panic supervisor and — when a
//! report path is given — the telemetry recorder lifecycle. A binary's
//! `main` is one call naming its slug, artifact and paper section plus a
//! closure running the experiment.
//!
//! Accepted flags (shared by every binary):
//!
//! - `--scale <quick|standard|thorough>` — experiment size; overrides the
//!   `PENELOPE_SCALE` environment variable;
//! - `--jobs <N>` — worker threads for the parallel sweep engine
//!   (`penelope::par`); overrides `PENELOPE_JOBS`; defaults to the
//!   machine's available parallelism;
//! - `--json <path>` — write a machine-readable run report (schema in
//!   `penelope-telemetry`); overrides `PENELOPE_METRICS`;
//! - `--checkpoint <path>` — persist every completed sweep cell to a
//!   crash-safe journal (`penelope::journal`); overrides
//!   `PENELOPE_CHECKPOINT`;
//! - `--resume` — restore completed cells from the `--checkpoint` journal
//!   instead of re-executing them; refuses corrupt or mismatched journals
//!   with a typed error;
//! - `--stream <path|->` — emit live JSONL introspection events
//!   (run/heartbeat/cell/retry/quarantine/journal-append) to a file or
//!   stdout while the run executes (`penelope_telemetry::span`); with
//!   `-` the human-readable output moves to stderr so stdout stays pure
//!   JSONL;
//! - `--trace <path>` — write a `chrome://tracing` span timeline of the
//!   finished run (implies the recorder, like `--json`);
//! - `--progress` — live cells-done/total progress line on stderr;
//!   auto-disabled when stderr is not a terminal so CI logs stay clean;
//! - `--repeat <N>` — run the experiment N times and report the best
//!   (minimum) wall time; timing reruns execute with telemetry suspended
//!   so the report's simulated totals stay single-run, and only the
//!   non-golden `wall_seconds` / `*_per_sec` fields are affected.
//!   Incompatible with `--checkpoint` / `--resume` / `--stream` /
//!   `--trace`, which assume a single recorded execution;
//! - `-h` / `--help` — print usage and exit successfully.
//!
//! When a report path is active the recorder is installed before the
//! environment variables are resolved — so a malformed `PENELOPE_SCALE`,
//! `PENELOPE_JOBS` or `PENELOPE_FAULTS` lands in the report's `warnings`
//! array, not just on stderr — drivers contribute phases/series through
//! `penelope::obs`, and the finished report is validated and written even
//! when the experiment fails (with `"status": "error"` in the manifest).
//! A run whose sweeps quarantined cells (see `penelope::par`) writes the
//! report with `"status": "incomplete"` and exits with code 3: the
//! partial results and the structured `quarantined: …` warnings are
//! preserved instead of aborting the whole reproduction.

use std::io::IsTerminal;
use std::panic::{catch_unwind, AssertUnwindSafe, UnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;

use penelope::error::Error;
use penelope::experiments::{efficiency_summary_faulted, Scale};
use penelope::fault::FaultPlan;
use penelope::journal::{CheckpointContext, JournalHeader};
use penelope::obs::{panic_message, scale_json};
use penelope::par;
use penelope::report::render_efficiency;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, span, validate_report, Json};

/// Parses a scale name, case-insensitively and ignoring surrounding
/// whitespace. The empty string means "standard".
///
/// # Example
///
/// ```
/// assert_eq!(
///     penelope_bench::parse_scale("QUICK"),
///     Ok(penelope::experiments::Scale::quick()),
/// );
/// assert!(penelope_bench::parse_scale("enormous").is_err());
/// ```
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "" | "standard" => Ok(Scale::standard()),
        "quick" => Ok(Scale::quick()),
        "thorough" => Ok(Scale::thorough()),
        other => Err(format!(
            "unknown scale {other:?} (expected quick, standard or thorough)"
        )),
    }
}

/// The canonical name of a scale, for the run manifest. Scales that match
/// none of the presets (impossible through this CLI) read "custom".
pub fn scale_name(scale: Scale) -> &'static str {
    if scale == Scale::quick() {
        "quick"
    } else if scale == Scale::standard() {
        "standard"
    } else if scale == Scale::thorough() {
        "thorough"
    } else {
        "custom"
    }
}

/// Reports a degraded-mode fallback: on stderr for whoever is watching
/// the run, and into the run report's `warnings` array when a recorder is
/// installed (a no-op otherwise), so a batch consumer reading only the
/// JSON still learns the run did not execute as configured.
fn degraded(message: String) {
    eprintln!("{message}");
    recorder::warning(message);
}

/// Reads the experiment scale from `PENELOPE_SCALE` (default: standard).
/// Unrecognized values warn — on stderr and in the run report — and fall
/// back to the default.
pub fn scale_from_env() -> Scale {
    match std::env::var("PENELOPE_SCALE") {
        Ok(value) => parse_scale(&value).unwrap_or_else(|warning| {
            degraded(format!("PENELOPE_SCALE: {warning}; using standard"));
            Scale::standard()
        }),
        Err(_) => Scale::standard(),
    }
}

/// Parses a worker count for the parallel sweep engine: a positive
/// integer.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "invalid job count {value:?} (expected a positive integer)"
        )),
        Ok(jobs) => Ok(jobs),
    }
}

/// Reads the worker count from `PENELOPE_JOBS`. Unset or empty means
/// "use the machine's available parallelism"; unparseable values warn —
/// on stderr and in the run report — and fall back the same way. `0` is
/// special-cased: unlike garbage (where the user's intent is unknowable),
/// a zero asks for "as little parallelism as possible", so it clamps to
/// one worker with a warning instead of silently going wide.
pub fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var("PENELOPE_JOBS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    if trimmed.parse::<usize>() == Ok(0) {
        degraded("PENELOPE_JOBS: job count 0 clamped to 1 worker".to_string());
        return Some(1);
    }
    match parse_jobs(trimmed) {
        Ok(jobs) => Some(jobs),
        Err(warning) => {
            degraded(format!(
                "PENELOPE_JOBS: {warning}; using available parallelism"
            ));
            None
        }
    }
}

/// Parses a fault-injection seed: a decimal `u64`.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_fault_seed(value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("invalid fault seed {value:?} (expected a decimal u64 seed)"))
}

/// Reads a fault plan from `PENELOPE_FAULTS`: a `u64` seed expanding into
/// a seeded random [`FaultPlan`]. Unset or empty means no faults;
/// unparseable values warn — on stderr and in the run report, naming the
/// accepted format — and disable injection rather than abort.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let raw = std::env::var("PENELOPE_FAULTS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match parse_fault_seed(trimmed) {
        Ok(seed) => Some(FaultPlan::random(seed)),
        Err(warning) => {
            degraded(format!("PENELOPE_FAULTS: {warning}; faults disabled"));
            None
        }
    }
}

/// Parses a supervisor retry count: a non-negative integer (0 disables
/// retries; failing cells quarantine on their first attempt).
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_retries(value: &str) -> Result<u32, String> {
    value
        .trim()
        .parse::<u32>()
        .map_err(|_| format!("invalid retry count {value:?} (expected a non-negative integer)"))
}

/// Parses a per-cell cycle budget: a positive integer count of simulated
/// cycles.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_cell_budget(value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(0) | Err(_) => Err(format!(
            "invalid cell budget {value:?} (expected a positive integer count of simulated cycles)"
        )),
        Ok(budget) => Ok(budget),
    }
}

/// Builds the sweep supervisor policy from `PENELOPE_RETRIES` and
/// `PENELOPE_CELL_BUDGET`. Unset or empty means the defaults (one retry,
/// no cycle budget); unparseable values warn — on stderr and in the run
/// report, naming the accepted format — and keep the default.
pub fn supervisor_from_env() -> par::SupervisorPolicy {
    let mut policy = par::SupervisorPolicy::default();
    if let Ok(raw) = std::env::var("PENELOPE_RETRIES") {
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            match parse_retries(trimmed) {
                Ok(retries) => policy.retries = retries,
                Err(warning) => degraded(format!(
                    "PENELOPE_RETRIES: {warning}; using {}",
                    policy.retries
                )),
            }
        }
    }
    if let Ok(raw) = std::env::var("PENELOPE_CELL_BUDGET") {
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            match parse_cell_budget(trimmed) {
                Ok(budget) => policy.cycle_budget = Some(budget),
                Err(warning) => degraded(format!(
                    "PENELOPE_CELL_BUDGET: {warning}; watchdog disabled"
                )),
            }
        }
    }
    policy
}

/// Prints a standard header naming the artifact being regenerated.
pub fn header(what: &str, paper_ref: &str, scale: Scale) {
    println!("=== Penelope reproduction: {what} ({paper_ref}) ===");
    println!(
        "scale: {} traces/suite x {} uops, time/{}\n",
        scale.traces_per_suite, scale.uops_per_trace, scale.time_scale
    );
}

/// An experiment-specific flag a binary registers on top of the shared
/// set (e.g. the fleet driver's `--fleet-size`). Extras always take a
/// value; parsed values are handed to the experiment closure unvalidated
/// — the driver owns the parse, and a bad value is a hard error there.
#[derive(Debug, Clone, Copy)]
pub struct ExtraFlag {
    /// The flag itself, including the leading dashes (`"--fleet-size"`).
    pub flag: &'static str,
    /// The value placeholder printed in usage (`"<N>"`).
    pub value_name: &'static str,
    /// One-line help text.
    pub help: &'static str,
}

/// Command-line options shared by every bench binary, after merging flags
/// with the environment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Args {
    scale: Option<Scale>,
    jobs: Option<usize>,
    json: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    stream: Option<PathBuf>,
    trace: Option<PathBuf>,
    progress: bool,
    repeat: Option<u32>,
    help: bool,
    /// Registered experiment-specific flags, as `(flag, value)` pairs in
    /// the order they appeared (a repeated flag keeps the last value).
    extras: Vec<(String, String)>,
}

/// Parses the shared flag set with no extras registered (the common
/// case; unit tests exercise the shared flags through this entry).
#[cfg(test)]
fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    parse_args_with(args, &[])
}

/// Parses the shared flag set plus a binary's registered [`ExtraFlag`]s.
/// Pure function over the argument list so it is unit-testable;
/// `run_main_with` feeds it `std::env::args().skip(1)`.
fn parse_args_with<I: IntoIterator<Item = String>>(
    args: I,
    extra_flags: &[ExtraFlag],
) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| {
            inline
                .clone()
                .or_else(|| iter.next())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--scale" => parsed.scale = Some(parse_scale(&value("--scale")?)?),
            "--jobs" => parsed.jobs = Some(parse_jobs(&value("--jobs")?)?),
            "--json" => parsed.json = Some(PathBuf::from(value("--json")?)),
            "--checkpoint" => parsed.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => {
                if inline.is_some() {
                    return Err("--resume does not take a value".to_string());
                }
                parsed.resume = true;
            }
            "--stream" => parsed.stream = Some(PathBuf::from(value("--stream")?)),
            "--trace" => parsed.trace = Some(PathBuf::from(value("--trace")?)),
            "--progress" => {
                if inline.is_some() {
                    return Err("--progress does not take a value".to_string());
                }
                parsed.progress = true;
            }
            "--repeat" => parsed.repeat = Some(parse_repeat(&value("--repeat")?)?),
            "-h" | "--help" => parsed.help = true,
            other => {
                if let Some(extra) = extra_flags.iter().find(|e| e.flag == other) {
                    let v = value(extra.flag)?;
                    match parsed.extras.iter_mut().find(|(k, _)| k == extra.flag) {
                        Some((_, old)) => *old = v,
                        None => parsed.extras.push((extra.flag.to_string(), v)),
                    }
                } else {
                    return Err(format!("unknown argument {other:?} (try --help)"));
                }
            }
        }
    }
    Ok(parsed)
}

fn usage_with(slug: &str, extra_flags: &[ExtraFlag]) {
    println!(
        "USAGE: {slug} [--scale <quick|standard|thorough>] [--jobs <N>] [--json <path>]\n\
         \x20               [--checkpoint <path>] [--resume] [--stream <path|->]\n\
         \x20               [--trace <path>] [--progress] [--repeat <N>]\n\
         \n\
         Options:\n\
         \x20 --scale <name>      experiment size (default: PENELOPE_SCALE or standard)\n\
         \x20 --jobs <N>          worker threads for experiment sweeps (default:\n\
         \x20                     PENELOPE_JOBS or the machine's available parallelism);\n\
         \x20                     results are identical at any setting\n\
         \x20 --json <path>       write a machine-readable run report (default: PENELOPE_METRICS)\n\
         \x20 --checkpoint <path> journal every completed sweep cell to <path> so an\n\
         \x20                     interrupted run can be resumed (default: PENELOPE_CHECKPOINT)\n\
         \x20 --resume            restore completed cells from the checkpoint journal\n\
         \x20                     instead of re-running them (requires a checkpoint path;\n\
         \x20                     corrupt or mismatched journals are refused)\n\
         \x20 --stream <path|->   emit live JSONL introspection events (heartbeats,\n\
         \x20                     cell completions, retries, quarantines) to a file,\n\
         \x20                     or to stdout when the path is '-' (the human-readable\n\
         \x20                     output then moves to stderr)\n\
         \x20 --trace <path>      write a chrome://tracing span timeline of the run\n\
         \x20 --progress          live cells-done/total line on stderr (auto-disabled\n\
         \x20                     when stderr is not a terminal)\n\
         \x20 --repeat <N>        run the experiment N times and report the best wall\n\
         \x20                     time (timing reruns record no telemetry; only the\n\
         \x20                     non-golden wall_seconds/*_per_sec fields change);\n\
         \x20                     incompatible with --checkpoint/--resume/--stream/--trace\n\
         \x20 -h, --help          print this help\n\
         \n\
         Environment:\n\
         \x20 PENELOPE_SCALE       scale when --scale is absent\n\
         \x20 PENELOPE_JOBS        worker threads when --jobs is absent\n\
         \x20 PENELOPE_METRICS     report path when --json is absent\n\
         \x20 PENELOPE_CHECKPOINT  checkpoint journal path when --checkpoint is absent\n\
         \x20 PENELOPE_FAULTS      u64 seed: replace the experiment with a seeded\n\
         \x20                      fault-injection run (always exits nonzero)\n\
         \x20 PENELOPE_RETRIES     supervisor retries per failing sweep cell (default 1)\n\
         \x20 PENELOPE_CELL_BUDGET quarantine any sweep cell whose telemetry exceeds\n\
         \x20                      this many simulated cycles"
    );
    if !extra_flags.is_empty() {
        println!("\nExperiment options ({slug}):");
        for extra in extra_flags {
            println!(
                "  {:<19} {}",
                format!("{} {}", extra.flag, extra.value_name),
                extra.help
            );
        }
    }
}

/// Parses a best-of-N repeat count: a positive integer (1 means a single
/// run, the default).
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_repeat(value: &str) -> Result<u32, String> {
    match value.trim().parse::<u32>() {
        Ok(0) | Err(_) => Err(format!(
            "invalid repeat count {value:?} (expected a positive integer)"
        )),
        Ok(repeat) => Ok(repeat),
    }
}

/// Parses a run-report path: any non-empty file path (a value with a
/// trailing separator names a directory and is rejected).
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_report_path(value: &str) -> Result<PathBuf, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "invalid report path {value:?} (expected a file path)"
        ));
    }
    if trimmed.ends_with('/') {
        return Err(format!(
            "invalid report path {value:?} (a directory, expected a file path)"
        ));
    }
    Ok(PathBuf::from(trimmed))
}

/// The report path after merging `--json` with `PENELOPE_METRICS`, plus a
/// warning to surface once the recorder is up. The flag wins unparsed (a
/// bad `--json` is impossible: any non-empty argument is a path). An
/// unset or empty `PENELOPE_METRICS` silently disables the report; a
/// malformed value warns — on stderr and in any later report — and
/// disables it, matching the `PENELOPE_RETRIES` / `PENELOPE_CELL_BUDGET`
/// treatment.
fn report_path(flag: Option<PathBuf>) -> (Option<PathBuf>, Option<String>) {
    if let Some(path) = flag {
        return (Some(path), None);
    }
    let Ok(raw) = std::env::var("PENELOPE_METRICS") else {
        return (None, None);
    };
    if raw.trim().is_empty() {
        return (None, None);
    }
    match parse_report_path(&raw) {
        Ok(path) => (Some(path), None),
        Err(warning) => (
            None,
            Some(format!("PENELOPE_METRICS: {warning}; run report disabled")),
        ),
    }
}

/// The checkpoint journal path after merging `--checkpoint` with
/// `PENELOPE_CHECKPOINT`.
fn checkpoint_path(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| {
        let raw = std::env::var("PENELOPE_CHECKPOINT").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(PathBuf::from(trimmed))
        }
    })
}

/// How a supervised run ended: cleanly, with quarantined cells (partial
/// results preserved), or failed outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pass,
    Incomplete,
    Failed,
}

impl Outcome {
    /// The tri-state stamped into the report manifest.
    fn status(self) -> &'static str {
        match self {
            Outcome::Pass => "ok",
            Outcome::Incomplete => "incomplete",
            Outcome::Failed => "error",
        }
    }

    /// The process exit code: 0 clean, 3 incomplete (quarantines), 1
    /// failed — so batch drivers can distinguish "partial but usable"
    /// from "nothing produced".
    fn exit(self) -> ExitCode {
        match self {
            Outcome::Pass => ExitCode::SUCCESS,
            Outcome::Incomplete => ExitCode::from(3),
            Outcome::Failed => ExitCode::FAILURE,
        }
    }
}

/// Runs one binary's experiment under the supervisor.
///
/// `slug` is the binary's short name (used in `--help` and the run
/// manifest), `what` the artifact being regenerated, `paper_ref` the paper
/// section. The closure receives the chosen scale and returns the rendered
/// report. Typed errors and panics are both reported to stderr with a
/// partial-results note and mapped to a nonzero exit code. When
/// `PENELOPE_FAULTS` is set the closure is bypassed: the seeded fault plan
/// runs through the full pipeline instead, and the process always exits
/// nonzero (see [`fault_plan_from_env`]).
///
/// With `--json <path>` (or `PENELOPE_METRICS=<path>`) the telemetry
/// recorder is active for the whole run and a validated JSON run report is
/// written to `path` on the way out — also on failure, with
/// `"status": "error"` in its manifest.
///
/// `--jobs <N>` (or `PENELOPE_JOBS=<N>`) sets the worker count for the
/// parallel sweep engine before the experiment starts; results and
/// reports are byte-identical at any setting outside wall-clock fields.
///
/// `--repeat <N>` re-runs the (deterministic) experiment N − 1 extra
/// times for timing and reports the best wall time; the closure is `Fn`
/// so it can be invoked repeatedly.
pub fn run_main(
    slug: &str,
    what: &str,
    paper_ref: &str,
    experiment: impl Fn(Scale) -> Result<String, Error> + UnwindSafe,
) -> ExitCode {
    run_main_with(slug, what, paper_ref, &[], move |scale, _extras| {
        experiment(scale)
    })
}

/// [`run_main`] plus experiment-specific [`ExtraFlag`]s: the registered
/// flags parse alongside the shared set, show under their own usage
/// heading, and their `(flag, value)` pairs reach the experiment closure
/// verbatim (the driver owns value validation).
pub fn run_main_with(
    slug: &str,
    what: &str,
    paper_ref: &str,
    extra_flags: &[ExtraFlag],
    experiment: impl Fn(Scale, &[(String, String)]) -> Result<String, Error> + UnwindSafe,
) -> ExitCode {
    let args = match parse_args_with(std::env::args().skip(1), extra_flags) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{slug}: {message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        usage_with(slug, extra_flags);
        return ExitCode::SUCCESS;
    }
    let (report, metrics_warning) = report_path(args.json);
    let recording = report.is_some() || args.trace.is_some();

    // Install the recorder before resolving the environment so that a
    // malformed PENELOPE_SCALE / PENELOPE_JOBS / PENELOPE_FAULTS fallback
    // is recorded in the report's `warnings` array, not just on stderr.
    // `--trace` implies the recorder too: the chrome trace is rendered
    // from the same collector.
    if recording {
        recorder::install(Settings::default());
        recorder::manifest_entry("binary", Json::from(slug));
        recorder::manifest_entry("artifact", Json::from(what));
        recorder::manifest_entry("paper_ref", Json::from(paper_ref));
    }
    if let Some(warning) = metrics_warning {
        degraded(warning);
    }
    let scale = args.scale.unwrap_or_else(scale_from_env);
    if recording {
        recorder::manifest_entry("scale_name", Json::from(scale_name(scale)));
    }
    // The jobs count steers wall-clock only — it is deliberately kept out
    // of the manifest so reports stay byte-identical across --jobs
    // settings (the determinism contract in `penelope::par`).
    let jobs = args
        .jobs
        .or_else(jobs_from_env)
        .unwrap_or_else(par::available_parallelism);
    par::set_jobs(jobs);
    // The supervisor policy likewise never enters the manifest: retries
    // and budgets only matter when cells fail, and then the warnings
    // array carries the structured record.
    par::set_supervisor(supervisor_from_env());
    // Progress is a terminal affordance: when stderr is a pipe (CI logs,
    // redirects) the flag silently stands down so logs stay clean.
    if args.progress && std::io::stderr().is_terminal() {
        par::set_progress(true);
    }
    // With the event stream on stdout, the human-readable output moves to
    // stderr so stdout stays pure, machine-parseable JSONL.
    let stream_to_stdout = args
        .stream
        .as_ref()
        .is_some_and(|path| path.as_os_str() == "-");
    if stream_to_stdout {
        eprintln!("=== Penelope reproduction: {what} ({paper_ref}) ===");
        eprintln!(
            "scale: {} traces/suite x {} uops, time/{}\n",
            scale.traces_per_suite, scale.uops_per_trace, scale.time_scale
        );
    } else {
        header(what, paper_ref, scale);
    }

    // The fault plan resolves before the journal header is stamped: a
    // checkpointed faulted run must refuse to resume into a fault-free
    // one (and vice versa).
    let plan = fault_plan_from_env();
    let checkpoint = checkpoint_path(args.checkpoint);
    let repeat = args.repeat.unwrap_or(1);
    if repeat > 1
        && (checkpoint.is_some() || args.resume || args.stream.is_some() || args.trace.is_some())
    {
        eprintln!(
            "{slug}: --repeat cannot be combined with --checkpoint, --resume, \
             --stream or --trace (timing reruns assume a single recorded execution)"
        );
        let _ = recorder::finish();
        return ExitCode::FAILURE;
    }
    if args.resume && checkpoint.is_none() {
        eprintln!(
            "{slug}: --resume requires a checkpoint journal path \
             (--checkpoint <path> or PENELOPE_CHECKPOINT)"
        );
        let _ = recorder::finish();
        return ExitCode::FAILURE;
    }
    if let Some(path) = &checkpoint {
        // The supervisor policy is stamped into the header: a journal
        // written under one retry/budget regime holds results another
        // regime might never have produced (a cell that succeeded on its
        // second attempt, a budget-truncated run), so resuming under a
        // different policy must refuse rather than silently mix them.
        let policy = par::supervisor();
        let journal_header = JournalHeader {
            binary: slug.to_string(),
            scale: scale_json(&scale),
            fault_seed: plan.as_ref().map_or(0, |p| p.seed),
            retries: policy.retries,
            cell_budget: policy.cycle_budget,
        };
        let context = if args.resume {
            CheckpointContext::resume(path, &journal_header)
        } else {
            CheckpointContext::create(path, &journal_header)
        };
        match context {
            Ok(context) => {
                if args.resume {
                    eprintln!(
                        "{slug}: resuming from {} ({} completed cell(s) restored)",
                        path.display(),
                        context.restored_cells()
                    );
                }
                par::set_checkpoint(Some(context));
            }
            Err(err) => {
                eprintln!("{slug}: {err}");
                let _ = recorder::finish();
                return ExitCode::FAILURE;
            }
        }
    }

    // Arm the live event stream last, so its run-start event carries the
    // fully resolved configuration. `-` streams to stdout for piping into
    // `jq`-style consumers; a file that cannot be created degrades the
    // run (warning on stderr and in the report) instead of failing it.
    let mut streaming = false;
    if let Some(path) = &args.stream {
        let writer: Option<Box<dyn std::io::Write + Send>> = if path.as_os_str() == "-" {
            Some(Box::new(std::io::stdout()))
        } else {
            match std::fs::File::create(path) {
                Ok(file) => Some(Box::new(file)),
                Err(err) => {
                    degraded(format!(
                        "cannot open event stream {}: {err}; streaming disabled",
                        path.display()
                    ));
                    None
                }
            }
        };
        if let Some(writer) = writer {
            span::set_stream(Some(writer));
            span::stream_event(
                "run-start",
                &[
                    ("binary", Json::from(slug)),
                    ("artifact", Json::from(what)),
                    ("scale", Json::from(scale_name(scale))),
                ],
            );
            streaming = true;
        }
    }

    let outcome = if let Some(plan) = plan {
        recorder::manifest_entry("fault_seed", Json::from(plan.seed));
        run_faulted(what, scale, &plan)
    } else {
        // The closures are stateless wrappers over free experiment
        // functions, so re-entering one after a caught panic is safe; a
        // panicking run fails the process anyway.
        let started = std::time::Instant::now();
        let first = catch_unwind(AssertUnwindSafe(|| experiment(scale, &args.extras)));
        let mut best_wall = started.elapsed().as_secs_f64();
        if repeat > 1 && matches!(first, Ok(Ok(_))) {
            // Timing reruns: telemetry is suspended so the report's
            // simulated totals stay single-run; the determinism contract
            // makes every rerun identical, so only the wall clock (best
            // of N, a non-golden field) is kept.
            let suspended = recorder::suspend();
            for _ in 1..repeat {
                let rerun_started = std::time::Instant::now();
                let rerun = catch_unwind(AssertUnwindSafe(|| experiment(scale, &args.extras)));
                let wall = rerun_started.elapsed().as_secs_f64();
                if matches!(rerun, Ok(Ok(_))) {
                    best_wall = best_wall.min(wall);
                }
            }
            if let Some(suspended) = suspended {
                recorder::resume(suspended);
            }
            recorder::override_wall_seconds(best_wall);
            eprintln!("{slug}: best of {repeat} runs: {best_wall:.3}s");
        }
        match first {
            Ok(Ok(rendered)) => {
                if stream_to_stdout {
                    eprint!("{rendered}");
                } else {
                    print!("{rendered}");
                }
                Outcome::Pass
            }
            Ok(Err(err @ Error::Quarantined { .. })) => {
                eprintln!("{what}: experiment incomplete: {err}");
                eprintln!(
                    "{what}: quarantined cells are recorded in the report's \
                     warnings; completed cells were preserved"
                );
                Outcome::Incomplete
            }
            Ok(Err(err)) => {
                eprintln!("{what}: experiment failed: {err}");
                eprintln!("{what}: no results were produced");
                Outcome::Failed
            }
            Err(payload) => {
                // `degraded` lands the payload message in the report's
                // warnings array too, not just on stderr.
                degraded(format!(
                    "{what}: experiment panicked: {}",
                    panic_message(&*payload)
                ));
                eprintln!("{what}: partial results lost; this is a bug in the harness");
                Outcome::Failed
            }
        }
    };
    par::set_checkpoint(None);
    par::set_progress(false);
    if streaming {
        span::stream_event("run-end", &[("status", Json::from(outcome.status()))]);
        if let Some(fault) = span::take_stream_fault() {
            degraded(fault);
        }
        span::set_stream(None);
    }

    let exit = outcome.exit();
    if recording {
        match write_outputs(
            slug,
            report.as_deref(),
            args.trace.as_deref(),
            outcome.status(),
        ) {
            Ok(()) => exit,
            Err(message) => {
                eprintln!("{slug}: {message}");
                ExitCode::FAILURE
            }
        }
    } else {
        exit
    }
}

/// Detaches the recorder, stamps the run status ("ok", "incomplete" or
/// "error"), and writes whichever outputs were requested: the validated
/// JSON run report (`--json`) and/or the chrome://tracing span timeline
/// (`--trace`), both newline-terminated.
fn write_outputs(
    slug: &str,
    report: Option<&std::path::Path>,
    trace: Option<&std::path::Path>,
    status: &str,
) -> Result<(), String> {
    if report.is_none() && trace.is_none() {
        return Ok(());
    }
    recorder::manifest_entry("status", Json::from(status));
    let collector = recorder::finish()
        .ok_or("internal error: recorder vanished before the outputs were written")?;
    if let Some(path) = report {
        let report = build_report(&collector);
        validate_report(&report).map_err(|err| format!("built an invalid report: {err}"))?;
        let mut encoded = report.encode();
        encoded.push('\n');
        std::fs::write(path, encoded)
            .map_err(|err| format!("cannot write report to {}: {err}", path.display()))?;
        eprintln!("{slug}: run report written to {}", path.display());
    }
    if let Some(path) = trace {
        let mut encoded = penelope_telemetry::chrome_trace(&collector).encode();
        encoded.push('\n');
        std::fs::write(path, encoded)
            .map_err(|err| format!("cannot write chrome trace to {}: {err}", path.display()))?;
        eprintln!("{slug}: chrome trace written to {}", path.display());
    }
    Ok(())
}

/// Executes a fault plan through the pipeline and reports the outcome.
/// Always returns failure: a faulted run never counts as a reproduction.
fn run_faulted(what: &str, scale: Scale, plan: &FaultPlan) -> Outcome {
    eprintln!(
        "{what}: FAULT INJECTION ACTIVE (seed {}, {:?}) — robustness \
         exercise, not a reproduction",
        plan.seed, plan.kinds
    );
    let plan_clone = plan.clone();
    match catch_unwind(move || efficiency_summary_faulted(scale, &plan_clone)) {
        Ok(Ok(rows)) => {
            eprintln!("{what}: faulted run completed; results below are suspect");
            print!("{}", render_efficiency(&rows));
        }
        Ok(Err(err)) => {
            eprintln!("{what}: faulted run rejected with a typed error: {err}");
        }
        Err(payload) => {
            // Preserve the payload message in the report's warnings, not
            // just on stderr: a batch consumer reading only the JSON must
            // see what killed the run.
            degraded(format!(
                "{what}: faulted run PANICKED: {} — the error layer should \
                 have caught this; please report it",
                panic_message(&*payload)
            ));
        }
    }
    Outcome::Failed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_scale_accepts_all_names_case_insensitively() {
        assert_eq!(parse_scale("quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("Quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("THOROUGH"), Ok(Scale::thorough()));
        assert_eq!(parse_scale(" standard "), Ok(Scale::standard()));
        assert_eq!(parse_scale(""), Ok(Scale::standard()));
    }

    #[test]
    fn parse_scale_rejects_unknown_names_with_context() {
        let err = parse_scale("enormous").unwrap_err();
        assert!(err.contains("enormous"));
        assert!(err.contains("quick"));
    }

    #[test]
    fn scale_names_round_trip() {
        for name in ["quick", "standard", "thorough"] {
            assert_eq!(scale_name(parse_scale(name).unwrap()), name);
        }
    }

    #[test]
    fn args_parse_both_flag_styles() {
        let parsed = parse_args(strings(&[
            "--scale", "quick", "--jobs", "4", "--json", "out.json",
        ]))
        .unwrap();
        assert_eq!(parsed.scale, Some(Scale::quick()));
        assert_eq!(parsed.jobs, Some(4));
        assert_eq!(parsed.json, Some(PathBuf::from("out.json")));
        assert!(!parsed.help);

        let parsed = parse_args(strings(&[
            "--scale=thorough",
            "--jobs=2",
            "--json=r/x.json",
        ]))
        .unwrap();
        assert_eq!(parsed.scale, Some(Scale::thorough()));
        assert_eq!(parsed.jobs, Some(2));
        assert_eq!(parsed.json, Some(PathBuf::from("r/x.json")));
    }

    #[test]
    fn jobs_parse_strictly() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 16 "), Ok(16));
        for bad in ["0", "-1", "two", "1.5", ""] {
            let err = parse_jobs(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
        }
        // The flag is strict: a bad --jobs is a parse error, not a warning.
        assert!(parse_args(strings(&["--jobs", "zero"]))
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn unparseable_jobs_env_warns_into_the_report() {
        // Only this test touches PENELOPE_JOBS, so the process-global
        // environment is not contended.
        std::env::set_var("PENELOPE_JOBS", "not-a-number");
        recorder::install(Settings::default());
        assert_eq!(jobs_from_env(), None, "garbage falls back to the default");
        let collector = recorder::finish().expect("installed above");
        std::env::remove_var("PENELOPE_JOBS");
        assert_eq!(collector.warnings.len(), 1);
        assert!(
            collector.warnings[0].contains("PENELOPE_JOBS"),
            "{:?}",
            collector.warnings
        );
    }

    #[test]
    fn args_reject_unknown_flags_and_missing_values() {
        assert!(parse_args(strings(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_args(strings(&["--json"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(strings(&["--scale", "enormous"]))
            .unwrap_err()
            .contains("enormous"));
    }

    #[test]
    fn help_flags_are_recognized() {
        assert!(parse_args(strings(&["-h"])).unwrap().help);
        assert!(parse_args(strings(&["--help"])).unwrap().help);
        assert!(!parse_args(strings(&[])).unwrap().help);
    }

    #[test]
    fn checkpoint_flags_parse_both_styles_and_resume_is_boolean() {
        let parsed = parse_args(strings(&["--checkpoint", "j.jsonl", "--resume"])).unwrap();
        assert_eq!(parsed.checkpoint, Some(PathBuf::from("j.jsonl")));
        assert!(parsed.resume);
        let parsed = parse_args(strings(&["--checkpoint=ckpt/run.jsonl"])).unwrap();
        assert_eq!(parsed.checkpoint, Some(PathBuf::from("ckpt/run.jsonl")));
        assert!(!parsed.resume);
        assert!(parse_args(strings(&["--resume=yes"]))
            .unwrap_err()
            .contains("does not take a value"));
        assert!(parse_args(strings(&["--checkpoint"]))
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn fault_seeds_parse_strictly() {
        assert_eq!(parse_fault_seed("17"), Ok(17));
        assert_eq!(parse_fault_seed(" 0 "), Ok(0));
        for bad in ["-1", "five", "1.5", "", "0x10"] {
            let err = parse_fault_seed(bad).unwrap_err();
            assert!(err.contains("decimal u64 seed"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn supervisor_knobs_parse_strictly() {
        assert_eq!(parse_retries("0"), Ok(0));
        assert_eq!(parse_retries(" 3 "), Ok(3));
        assert!(parse_retries("-1")
            .unwrap_err()
            .contains("non-negative integer"));
        assert_eq!(parse_cell_budget("1000"), Ok(1000));
        for bad in ["0", "lots", ""] {
            let err = parse_cell_budget(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn repeat_counts_parse_strictly() {
        assert_eq!(parse_repeat("1"), Ok(1));
        assert_eq!(parse_repeat(" 5 "), Ok(5));
        for bad in ["0", "-2", "many", "1.5", ""] {
            let err = parse_repeat(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
        }
        let parsed = parse_args(strings(&["--repeat", "3"])).unwrap();
        assert_eq!(parsed.repeat, Some(3));
        let parsed = parse_args(strings(&["--repeat=7"])).unwrap();
        assert_eq!(parsed.repeat, Some(7));
        assert!(parse_args(strings(&[])).unwrap().repeat.is_none());
        assert!(parse_args(strings(&["--repeat"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(strings(&["--repeat", "0"]))
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn registered_extra_flags_parse_in_both_styles_and_keep_the_last_value() {
        const EXTRAS: &[ExtraFlag] = &[ExtraFlag {
            flag: "--fleet-size",
            value_name: "<N>",
            help: "test flag",
        }];
        let parsed = parse_args_with(
            strings(&["--fleet-size", "512", "--scale", "quick"]),
            EXTRAS,
        )
        .unwrap();
        assert_eq!(
            parsed.extras,
            vec![("--fleet-size".to_string(), "512".to_string())]
        );
        assert_eq!(parsed.scale, Some(Scale::quick()));
        // Inline style, and a repeated flag overrides (last one wins, like
        // the shared flags).
        let parsed =
            parse_args_with(strings(&["--fleet-size=8", "--fleet-size=64"]), EXTRAS).unwrap();
        assert_eq!(
            parsed.extras,
            vec![("--fleet-size".to_string(), "64".to_string())]
        );
        assert!(parse_args_with(strings(&["--fleet-size"]), EXTRAS)
            .unwrap_err()
            .contains("requires a value"));
        // Registering extras must not open the door to arbitrary flags.
        assert!(parse_args_with(strings(&["--warp-factor", "9"]), EXTRAS)
            .unwrap_err()
            .contains("unknown argument"));
        // And an extra is unknown to binaries that did not register it.
        assert!(parse_args(strings(&["--fleet-size", "512"]))
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn outcomes_map_to_status_and_exit_codes() {
        assert_eq!(Outcome::Pass.status(), "ok");
        assert_eq!(Outcome::Incomplete.status(), "incomplete");
        assert_eq!(Outcome::Failed.status(), "error");
        assert_eq!(Outcome::Pass.exit(), ExitCode::SUCCESS);
        assert_eq!(Outcome::Incomplete.exit(), ExitCode::from(3));
        assert_eq!(Outcome::Failed.exit(), ExitCode::FAILURE);
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*payload), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*payload), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }

    #[test]
    fn report_writing_needs_an_installed_recorder() {
        let _ = recorder::finish();
        let err = write_outputs(
            "test",
            Some(std::path::Path::new("/nonexistent/x.json")),
            None,
            "ok",
        )
        .unwrap_err();
        assert!(err.contains("recorder"), "{err}");
        // With nothing requested there is nothing to do, recorder or not.
        write_outputs("test", None, None, "ok").unwrap();
    }

    #[test]
    fn written_reports_validate_and_carry_the_status() {
        let dir = std::env::temp_dir().join("penelope-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let trace_path = dir.join("trace.json");
        recorder::install(Settings::default());
        recorder::manifest_entry("binary", Json::from("test"));
        recorder::record_run(1_000, 400);
        write_outputs("test", Some(&path), Some(&trace_path), "error").unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let report = penelope_telemetry::json::parse(&raw).unwrap();
        validate_report(&report).unwrap();
        assert_eq!(
            report
                .get("manifest")
                .and_then(|m| m.get("status"))
                .and_then(Json::as_str),
            Some("error")
        );
        // The chrome trace is a JSON array whose first event is the
        // process-name metadata record.
        let raw = std::fs::read_to_string(&trace_path).unwrap();
        let trace = penelope_telemetry::json::parse(&raw).unwrap();
        let events = trace.as_array().expect("chrome trace is an array");
        assert_eq!(
            events[0].get("ph").and_then(Json::as_str),
            Some("M"),
            "{:?}",
            events[0]
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&trace_path).unwrap();
    }

    #[test]
    fn report_paths_parse_strictly() {
        assert_eq!(parse_report_path("out.json"), Ok(PathBuf::from("out.json")));
        assert_eq!(
            parse_report_path(" reports/run.json "),
            Ok(PathBuf::from("reports/run.json"))
        );
        assert!(parse_report_path("   ")
            .unwrap_err()
            .contains("expected a file path"));
        assert!(parse_report_path("reports/")
            .unwrap_err()
            .contains("a directory"));
    }

    #[test]
    fn unparseable_metrics_env_warns_and_disables_the_report() {
        // Only this test touches PENELOPE_METRICS, so the process-global
        // environment is not contended.
        std::env::set_var("PENELOPE_METRICS", "reports/");
        let (path, warning) = report_path(None);
        assert_eq!(path, None, "a directory path disables the report");
        let warning = warning.expect("malformed values warn");
        assert!(warning.contains("PENELOPE_METRICS"), "{warning}");
        assert!(warning.contains("run report disabled"), "{warning}");

        // Empty is the documented way to disable the report: no warning.
        std::env::set_var("PENELOPE_METRICS", "  ");
        assert_eq!(report_path(None), (None, None));

        // The flag wins over the environment, unparsed.
        let (path, warning) = report_path(Some(PathBuf::from("out.json")));
        assert_eq!(path, Some(PathBuf::from("out.json")));
        assert_eq!(warning, None);
        std::env::remove_var("PENELOPE_METRICS");
        assert_eq!(report_path(None), (None, None));
    }

    #[test]
    fn observability_flags_parse_both_styles() {
        let parsed = parse_args(strings(&[
            "--stream",
            "-",
            "--trace",
            "t.json",
            "--progress",
        ]))
        .unwrap();
        assert_eq!(parsed.stream, Some(PathBuf::from("-")));
        assert_eq!(parsed.trace, Some(PathBuf::from("t.json")));
        assert!(parsed.progress);
        let parsed = parse_args(strings(&["--stream=events.jsonl", "--trace=out/t.json"])).unwrap();
        assert_eq!(parsed.stream, Some(PathBuf::from("events.jsonl")));
        assert_eq!(parsed.trace, Some(PathBuf::from("out/t.json")));
        assert!(!parsed.progress);
        assert!(parse_args(strings(&["--progress=yes"]))
            .unwrap_err()
            .contains("does not take a value"));
        assert!(parse_args(strings(&["--stream"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(strings(&["--trace"]))
            .unwrap_err()
            .contains("requires a value"));
    }
}
