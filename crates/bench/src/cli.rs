//! The shared command-line front end for every `penelope-bench` binary.
//!
//! All eleven binaries funnel through [`run_main`]: flag parsing, the
//! scale/fault environment variables, the panic supervisor and — when a
//! report path is given — the telemetry recorder lifecycle. A binary's
//! `main` is one call naming its slug, artifact and paper section plus a
//! closure running the experiment.
//!
//! Accepted flags (shared by every binary):
//!
//! - `--scale <quick|standard|thorough>` — experiment size; overrides the
//!   `PENELOPE_SCALE` environment variable;
//! - `--jobs <N>` — worker threads for the parallel sweep engine
//!   (`penelope::par`); overrides `PENELOPE_JOBS`; defaults to the
//!   machine's available parallelism;
//! - `--json <path>` — write a machine-readable run report (schema in
//!   `penelope-telemetry`); overrides `PENELOPE_METRICS`;
//! - `--checkpoint <path>` — persist every completed sweep cell to a
//!   crash-safe journal (`penelope::journal`); overrides
//!   `PENELOPE_CHECKPOINT`;
//! - `--resume` — restore completed cells from the `--checkpoint` journal
//!   instead of re-executing them; refuses corrupt or mismatched journals
//!   with a typed error;
//! - `-h` / `--help` — print usage and exit successfully.
//!
//! When a report path is active the recorder is installed before the
//! environment variables are resolved — so a malformed `PENELOPE_SCALE`,
//! `PENELOPE_JOBS` or `PENELOPE_FAULTS` lands in the report's `warnings`
//! array, not just on stderr — drivers contribute phases/series through
//! `penelope::obs`, and the finished report is validated and written even
//! when the experiment fails (with `"status": "error"` in the manifest).
//! A run whose sweeps quarantined cells (see `penelope::par`) writes the
//! report with `"status": "incomplete"` and exits with code 3: the
//! partial results and the structured `quarantined: …` warnings are
//! preserved instead of aborting the whole reproduction.

use std::panic::{catch_unwind, UnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;

use penelope::error::Error;
use penelope::experiments::{efficiency_summary_faulted, Scale};
use penelope::fault::FaultPlan;
use penelope::journal::{CheckpointContext, JournalHeader};
use penelope::obs::{panic_message, scale_json};
use penelope::par;
use penelope::report::render_efficiency;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, validate_report, Json};

/// Parses a scale name, case-insensitively and ignoring surrounding
/// whitespace. The empty string means "standard".
///
/// # Example
///
/// ```
/// assert_eq!(
///     penelope_bench::parse_scale("QUICK"),
///     Ok(penelope::experiments::Scale::quick()),
/// );
/// assert!(penelope_bench::parse_scale("enormous").is_err());
/// ```
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "" | "standard" => Ok(Scale::standard()),
        "quick" => Ok(Scale::quick()),
        "thorough" => Ok(Scale::thorough()),
        other => Err(format!(
            "unknown scale {other:?} (expected quick, standard or thorough)"
        )),
    }
}

/// The canonical name of a scale, for the run manifest. Scales that match
/// none of the presets (impossible through this CLI) read "custom".
pub fn scale_name(scale: Scale) -> &'static str {
    if scale == Scale::quick() {
        "quick"
    } else if scale == Scale::standard() {
        "standard"
    } else if scale == Scale::thorough() {
        "thorough"
    } else {
        "custom"
    }
}

/// Reports a degraded-mode fallback: on stderr for whoever is watching
/// the run, and into the run report's `warnings` array when a recorder is
/// installed (a no-op otherwise), so a batch consumer reading only the
/// JSON still learns the run did not execute as configured.
fn degraded(message: String) {
    eprintln!("{message}");
    recorder::warning(message);
}

/// Reads the experiment scale from `PENELOPE_SCALE` (default: standard).
/// Unrecognized values warn — on stderr and in the run report — and fall
/// back to the default.
pub fn scale_from_env() -> Scale {
    match std::env::var("PENELOPE_SCALE") {
        Ok(value) => parse_scale(&value).unwrap_or_else(|warning| {
            degraded(format!("PENELOPE_SCALE: {warning}; using standard"));
            Scale::standard()
        }),
        Err(_) => Scale::standard(),
    }
}

/// Parses a worker count for the parallel sweep engine: a positive
/// integer.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "invalid job count {value:?} (expected a positive integer)"
        )),
        Ok(jobs) => Ok(jobs),
    }
}

/// Reads the worker count from `PENELOPE_JOBS`. Unset or empty means
/// "use the machine's available parallelism"; unparseable values warn —
/// on stderr and in the run report — and fall back the same way.
pub fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var("PENELOPE_JOBS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match parse_jobs(trimmed) {
        Ok(jobs) => Some(jobs),
        Err(warning) => {
            degraded(format!(
                "PENELOPE_JOBS: {warning}; using available parallelism"
            ));
            None
        }
    }
}

/// Parses a fault-injection seed: a decimal `u64`.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_fault_seed(value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("invalid fault seed {value:?} (expected a decimal u64 seed)"))
}

/// Reads a fault plan from `PENELOPE_FAULTS`: a `u64` seed expanding into
/// a seeded random [`FaultPlan`]. Unset or empty means no faults;
/// unparseable values warn — on stderr and in the run report, naming the
/// accepted format — and disable injection rather than abort.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let raw = std::env::var("PENELOPE_FAULTS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match parse_fault_seed(trimmed) {
        Ok(seed) => Some(FaultPlan::random(seed)),
        Err(warning) => {
            degraded(format!("PENELOPE_FAULTS: {warning}; faults disabled"));
            None
        }
    }
}

/// Parses a supervisor retry count: a non-negative integer (0 disables
/// retries; failing cells quarantine on their first attempt).
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_retries(value: &str) -> Result<u32, String> {
    value
        .trim()
        .parse::<u32>()
        .map_err(|_| format!("invalid retry count {value:?} (expected a non-negative integer)"))
}

/// Parses a per-cell cycle budget: a positive integer count of simulated
/// cycles.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_cell_budget(value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(0) | Err(_) => Err(format!(
            "invalid cell budget {value:?} (expected a positive integer count of simulated cycles)"
        )),
        Ok(budget) => Ok(budget),
    }
}

/// Builds the sweep supervisor policy from `PENELOPE_RETRIES` and
/// `PENELOPE_CELL_BUDGET`. Unset or empty means the defaults (one retry,
/// no cycle budget); unparseable values warn — on stderr and in the run
/// report, naming the accepted format — and keep the default.
pub fn supervisor_from_env() -> par::SupervisorPolicy {
    let mut policy = par::SupervisorPolicy::default();
    if let Ok(raw) = std::env::var("PENELOPE_RETRIES") {
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            match parse_retries(trimmed) {
                Ok(retries) => policy.retries = retries,
                Err(warning) => degraded(format!(
                    "PENELOPE_RETRIES: {warning}; using {}",
                    policy.retries
                )),
            }
        }
    }
    if let Ok(raw) = std::env::var("PENELOPE_CELL_BUDGET") {
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            match parse_cell_budget(trimmed) {
                Ok(budget) => policy.cycle_budget = Some(budget),
                Err(warning) => degraded(format!(
                    "PENELOPE_CELL_BUDGET: {warning}; watchdog disabled"
                )),
            }
        }
    }
    policy
}

/// Prints a standard header naming the artifact being regenerated.
pub fn header(what: &str, paper_ref: &str, scale: Scale) {
    println!("=== Penelope reproduction: {what} ({paper_ref}) ===");
    println!(
        "scale: {} traces/suite x {} uops, time/{}\n",
        scale.traces_per_suite, scale.uops_per_trace, scale.time_scale
    );
}

/// Command-line options shared by every bench binary, after merging flags
/// with the environment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Args {
    scale: Option<Scale>,
    jobs: Option<usize>,
    json: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    help: bool,
}

/// Parses the shared flag set. Pure function over the argument list so it
/// is unit-testable; `run_main` feeds it `std::env::args().skip(1)`.
fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| {
            inline
                .clone()
                .or_else(|| iter.next())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--scale" => parsed.scale = Some(parse_scale(&value("--scale")?)?),
            "--jobs" => parsed.jobs = Some(parse_jobs(&value("--jobs")?)?),
            "--json" => parsed.json = Some(PathBuf::from(value("--json")?)),
            "--checkpoint" => parsed.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => {
                if inline.is_some() {
                    return Err("--resume does not take a value".to_string());
                }
                parsed.resume = true;
            }
            "-h" | "--help" => parsed.help = true,
            other => {
                return Err(format!("unknown argument {other:?} (try --help)"));
            }
        }
    }
    Ok(parsed)
}

fn usage(slug: &str) {
    println!(
        "USAGE: {slug} [--scale <quick|standard|thorough>] [--jobs <N>] [--json <path>]\n\
         \x20               [--checkpoint <path>] [--resume]\n\
         \n\
         Options:\n\
         \x20 --scale <name>      experiment size (default: PENELOPE_SCALE or standard)\n\
         \x20 --jobs <N>          worker threads for experiment sweeps (default:\n\
         \x20                     PENELOPE_JOBS or the machine's available parallelism);\n\
         \x20                     results are identical at any setting\n\
         \x20 --json <path>       write a machine-readable run report (default: PENELOPE_METRICS)\n\
         \x20 --checkpoint <path> journal every completed sweep cell to <path> so an\n\
         \x20                     interrupted run can be resumed (default: PENELOPE_CHECKPOINT)\n\
         \x20 --resume            restore completed cells from the checkpoint journal\n\
         \x20                     instead of re-running them (requires a checkpoint path;\n\
         \x20                     corrupt or mismatched journals are refused)\n\
         \x20 -h, --help          print this help\n\
         \n\
         Environment:\n\
         \x20 PENELOPE_SCALE       scale when --scale is absent\n\
         \x20 PENELOPE_JOBS        worker threads when --jobs is absent\n\
         \x20 PENELOPE_METRICS     report path when --json is absent\n\
         \x20 PENELOPE_CHECKPOINT  checkpoint journal path when --checkpoint is absent\n\
         \x20 PENELOPE_FAULTS      u64 seed: replace the experiment with a seeded\n\
         \x20                      fault-injection run (always exits nonzero)\n\
         \x20 PENELOPE_RETRIES     supervisor retries per failing sweep cell (default 1)\n\
         \x20 PENELOPE_CELL_BUDGET quarantine any sweep cell whose telemetry exceeds\n\
         \x20                      this many simulated cycles"
    );
}

/// The report path after merging `--json` with `PENELOPE_METRICS`.
fn report_path(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| {
        let raw = std::env::var("PENELOPE_METRICS").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(PathBuf::from(trimmed))
        }
    })
}

/// The checkpoint journal path after merging `--checkpoint` with
/// `PENELOPE_CHECKPOINT`.
fn checkpoint_path(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| {
        let raw = std::env::var("PENELOPE_CHECKPOINT").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(PathBuf::from(trimmed))
        }
    })
}

/// How a supervised run ended: cleanly, with quarantined cells (partial
/// results preserved), or failed outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pass,
    Incomplete,
    Failed,
}

impl Outcome {
    /// The tri-state stamped into the report manifest.
    fn status(self) -> &'static str {
        match self {
            Outcome::Pass => "ok",
            Outcome::Incomplete => "incomplete",
            Outcome::Failed => "error",
        }
    }

    /// The process exit code: 0 clean, 3 incomplete (quarantines), 1
    /// failed — so batch drivers can distinguish "partial but usable"
    /// from "nothing produced".
    fn exit(self) -> ExitCode {
        match self {
            Outcome::Pass => ExitCode::SUCCESS,
            Outcome::Incomplete => ExitCode::from(3),
            Outcome::Failed => ExitCode::FAILURE,
        }
    }
}

/// Runs one binary's experiment under the supervisor.
///
/// `slug` is the binary's short name (used in `--help` and the run
/// manifest), `what` the artifact being regenerated, `paper_ref` the paper
/// section. The closure receives the chosen scale and returns the rendered
/// report. Typed errors and panics are both reported to stderr with a
/// partial-results note and mapped to a nonzero exit code. When
/// `PENELOPE_FAULTS` is set the closure is bypassed: the seeded fault plan
/// runs through the full pipeline instead, and the process always exits
/// nonzero (see [`fault_plan_from_env`]).
///
/// With `--json <path>` (or `PENELOPE_METRICS=<path>`) the telemetry
/// recorder is active for the whole run and a validated JSON run report is
/// written to `path` on the way out — also on failure, with
/// `"status": "error"` in its manifest.
///
/// `--jobs <N>` (or `PENELOPE_JOBS=<N>`) sets the worker count for the
/// parallel sweep engine before the experiment starts; results and
/// reports are byte-identical at any setting outside wall-clock fields.
pub fn run_main(
    slug: &str,
    what: &str,
    paper_ref: &str,
    experiment: impl FnOnce(Scale) -> Result<String, Error> + UnwindSafe,
) -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{slug}: {message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        usage(slug);
        return ExitCode::SUCCESS;
    }
    let report = report_path(args.json);

    // Install the recorder before resolving the environment so that a
    // malformed PENELOPE_SCALE / PENELOPE_JOBS / PENELOPE_FAULTS fallback
    // is recorded in the report's `warnings` array, not just on stderr.
    if report.is_some() {
        recorder::install(Settings::default());
        recorder::manifest_entry("binary", Json::from(slug));
        recorder::manifest_entry("artifact", Json::from(what));
        recorder::manifest_entry("paper_ref", Json::from(paper_ref));
    }
    let scale = args.scale.unwrap_or_else(scale_from_env);
    if report.is_some() {
        recorder::manifest_entry("scale_name", Json::from(scale_name(scale)));
    }
    // The jobs count steers wall-clock only — it is deliberately kept out
    // of the manifest so reports stay byte-identical across --jobs
    // settings (the determinism contract in `penelope::par`).
    let jobs = args
        .jobs
        .or_else(jobs_from_env)
        .unwrap_or_else(par::available_parallelism);
    par::set_jobs(jobs);
    // The supervisor policy likewise never enters the manifest: retries
    // and budgets only matter when cells fail, and then the warnings
    // array carries the structured record.
    par::set_supervisor(supervisor_from_env());
    header(what, paper_ref, scale);

    // The fault plan resolves before the journal header is stamped: a
    // checkpointed faulted run must refuse to resume into a fault-free
    // one (and vice versa).
    let plan = fault_plan_from_env();
    let checkpoint = checkpoint_path(args.checkpoint);
    if args.resume && checkpoint.is_none() {
        eprintln!(
            "{slug}: --resume requires a checkpoint journal path \
             (--checkpoint <path> or PENELOPE_CHECKPOINT)"
        );
        let _ = recorder::finish();
        return ExitCode::FAILURE;
    }
    if let Some(path) = &checkpoint {
        let journal_header = JournalHeader {
            binary: slug.to_string(),
            scale: scale_json(&scale),
            fault_seed: plan.as_ref().map_or(0, |p| p.seed),
        };
        let context = if args.resume {
            CheckpointContext::resume(path, &journal_header)
        } else {
            CheckpointContext::create(path, &journal_header)
        };
        match context {
            Ok(context) => {
                if args.resume {
                    eprintln!(
                        "{slug}: resuming from {} ({} completed cell(s) restored)",
                        path.display(),
                        context.restored_cells()
                    );
                }
                par::set_checkpoint(Some(context));
            }
            Err(err) => {
                eprintln!("{slug}: {err}");
                let _ = recorder::finish();
                return ExitCode::FAILURE;
            }
        }
    }

    let outcome = if let Some(plan) = plan {
        recorder::manifest_entry("fault_seed", Json::from(plan.seed));
        run_faulted(what, scale, &plan)
    } else {
        match catch_unwind(move || experiment(scale)) {
            Ok(Ok(rendered)) => {
                print!("{rendered}");
                Outcome::Pass
            }
            Ok(Err(err @ Error::Quarantined { .. })) => {
                eprintln!("{what}: experiment incomplete: {err}");
                eprintln!(
                    "{what}: quarantined cells are recorded in the report's \
                     warnings; completed cells were preserved"
                );
                Outcome::Incomplete
            }
            Ok(Err(err)) => {
                eprintln!("{what}: experiment failed: {err}");
                eprintln!("{what}: no results were produced");
                Outcome::Failed
            }
            Err(payload) => {
                // `degraded` lands the payload message in the report's
                // warnings array too, not just on stderr.
                degraded(format!(
                    "{what}: experiment panicked: {}",
                    panic_message(&*payload)
                ));
                eprintln!("{what}: partial results lost; this is a bug in the harness");
                Outcome::Failed
            }
        }
    };
    par::set_checkpoint(None);

    let exit = outcome.exit();
    match report {
        Some(path) => match write_report(slug, &path, outcome.status()) {
            Ok(()) => exit,
            Err(message) => {
                eprintln!("{slug}: {message}");
                ExitCode::FAILURE
            }
        },
        None => exit,
    }
}

/// Detaches the recorder, stamps the run status ("ok", "incomplete" or
/// "error"), validates the report and writes it (newline-terminated) to
/// `path`.
fn write_report(slug: &str, path: &std::path::Path, status: &str) -> Result<(), String> {
    recorder::manifest_entry("status", Json::from(status));
    let collector = recorder::finish()
        .ok_or("internal error: recorder vanished before the report was written")?;
    let report = build_report(&collector);
    validate_report(&report).map_err(|err| format!("built an invalid report: {err}"))?;
    let mut encoded = report.encode();
    encoded.push('\n');
    std::fs::write(path, encoded)
        .map_err(|err| format!("cannot write report to {}: {err}", path.display()))?;
    eprintln!("{slug}: run report written to {}", path.display());
    Ok(())
}

/// Executes a fault plan through the pipeline and reports the outcome.
/// Always returns failure: a faulted run never counts as a reproduction.
fn run_faulted(what: &str, scale: Scale, plan: &FaultPlan) -> Outcome {
    eprintln!(
        "{what}: FAULT INJECTION ACTIVE (seed {}, {:?}) — robustness \
         exercise, not a reproduction",
        plan.seed, plan.kinds
    );
    let plan_clone = plan.clone();
    match catch_unwind(move || efficiency_summary_faulted(scale, &plan_clone)) {
        Ok(Ok(rows)) => {
            eprintln!("{what}: faulted run completed; results below are suspect");
            print!("{}", render_efficiency(&rows));
        }
        Ok(Err(err)) => {
            eprintln!("{what}: faulted run rejected with a typed error: {err}");
        }
        Err(payload) => {
            // Preserve the payload message in the report's warnings, not
            // just on stderr: a batch consumer reading only the JSON must
            // see what killed the run.
            degraded(format!(
                "{what}: faulted run PANICKED: {} — the error layer should \
                 have caught this; please report it",
                panic_message(&*payload)
            ));
        }
    }
    Outcome::Failed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_scale_accepts_all_names_case_insensitively() {
        assert_eq!(parse_scale("quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("Quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("THOROUGH"), Ok(Scale::thorough()));
        assert_eq!(parse_scale(" standard "), Ok(Scale::standard()));
        assert_eq!(parse_scale(""), Ok(Scale::standard()));
    }

    #[test]
    fn parse_scale_rejects_unknown_names_with_context() {
        let err = parse_scale("enormous").unwrap_err();
        assert!(err.contains("enormous"));
        assert!(err.contains("quick"));
    }

    #[test]
    fn scale_names_round_trip() {
        for name in ["quick", "standard", "thorough"] {
            assert_eq!(scale_name(parse_scale(name).unwrap()), name);
        }
    }

    #[test]
    fn args_parse_both_flag_styles() {
        let parsed = parse_args(strings(&[
            "--scale", "quick", "--jobs", "4", "--json", "out.json",
        ]))
        .unwrap();
        assert_eq!(parsed.scale, Some(Scale::quick()));
        assert_eq!(parsed.jobs, Some(4));
        assert_eq!(parsed.json, Some(PathBuf::from("out.json")));
        assert!(!parsed.help);

        let parsed = parse_args(strings(&[
            "--scale=thorough",
            "--jobs=2",
            "--json=r/x.json",
        ]))
        .unwrap();
        assert_eq!(parsed.scale, Some(Scale::thorough()));
        assert_eq!(parsed.jobs, Some(2));
        assert_eq!(parsed.json, Some(PathBuf::from("r/x.json")));
    }

    #[test]
    fn jobs_parse_strictly() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 16 "), Ok(16));
        for bad in ["0", "-1", "two", "1.5", ""] {
            let err = parse_jobs(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
        }
        // The flag is strict: a bad --jobs is a parse error, not a warning.
        assert!(parse_args(strings(&["--jobs", "zero"]))
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn unparseable_jobs_env_warns_into_the_report() {
        // Only this test touches PENELOPE_JOBS, so the process-global
        // environment is not contended.
        std::env::set_var("PENELOPE_JOBS", "not-a-number");
        recorder::install(Settings::default());
        assert_eq!(jobs_from_env(), None, "garbage falls back to the default");
        let collector = recorder::finish().expect("installed above");
        std::env::remove_var("PENELOPE_JOBS");
        assert_eq!(collector.warnings.len(), 1);
        assert!(
            collector.warnings[0].contains("PENELOPE_JOBS"),
            "{:?}",
            collector.warnings
        );
    }

    #[test]
    fn args_reject_unknown_flags_and_missing_values() {
        assert!(parse_args(strings(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_args(strings(&["--json"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(strings(&["--scale", "enormous"]))
            .unwrap_err()
            .contains("enormous"));
    }

    #[test]
    fn help_flags_are_recognized() {
        assert!(parse_args(strings(&["-h"])).unwrap().help);
        assert!(parse_args(strings(&["--help"])).unwrap().help);
        assert!(!parse_args(strings(&[])).unwrap().help);
    }

    #[test]
    fn checkpoint_flags_parse_both_styles_and_resume_is_boolean() {
        let parsed = parse_args(strings(&["--checkpoint", "j.jsonl", "--resume"])).unwrap();
        assert_eq!(parsed.checkpoint, Some(PathBuf::from("j.jsonl")));
        assert!(parsed.resume);
        let parsed = parse_args(strings(&["--checkpoint=ckpt/run.jsonl"])).unwrap();
        assert_eq!(parsed.checkpoint, Some(PathBuf::from("ckpt/run.jsonl")));
        assert!(!parsed.resume);
        assert!(parse_args(strings(&["--resume=yes"]))
            .unwrap_err()
            .contains("does not take a value"));
        assert!(parse_args(strings(&["--checkpoint"]))
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn fault_seeds_parse_strictly() {
        assert_eq!(parse_fault_seed("17"), Ok(17));
        assert_eq!(parse_fault_seed(" 0 "), Ok(0));
        for bad in ["-1", "five", "1.5", "", "0x10"] {
            let err = parse_fault_seed(bad).unwrap_err();
            assert!(err.contains("decimal u64 seed"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn supervisor_knobs_parse_strictly() {
        assert_eq!(parse_retries("0"), Ok(0));
        assert_eq!(parse_retries(" 3 "), Ok(3));
        assert!(parse_retries("-1")
            .unwrap_err()
            .contains("non-negative integer"));
        assert_eq!(parse_cell_budget("1000"), Ok(1000));
        for bad in ["0", "lots", ""] {
            let err = parse_cell_budget(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn outcomes_map_to_status_and_exit_codes() {
        assert_eq!(Outcome::Pass.status(), "ok");
        assert_eq!(Outcome::Incomplete.status(), "incomplete");
        assert_eq!(Outcome::Failed.status(), "error");
        assert_eq!(Outcome::Pass.exit(), ExitCode::SUCCESS);
        assert_eq!(Outcome::Incomplete.exit(), ExitCode::from(3));
        assert_eq!(Outcome::Failed.exit(), ExitCode::FAILURE);
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*payload), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*payload), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }

    #[test]
    fn report_writing_needs_an_installed_recorder() {
        let _ = recorder::finish();
        let err =
            write_report("test", std::path::Path::new("/nonexistent/x.json"), "ok").unwrap_err();
        assert!(err.contains("recorder"), "{err}");
    }

    #[test]
    fn written_reports_validate_and_carry_the_status() {
        let dir = std::env::temp_dir().join("penelope-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        recorder::install(Settings::default());
        recorder::manifest_entry("binary", Json::from("test"));
        recorder::record_run(1_000, 400);
        write_report("test", &path, "error").unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let report = penelope_telemetry::json::parse(&raw).unwrap();
        validate_report(&report).unwrap();
        assert_eq!(
            report
                .get("manifest")
                .and_then(|m| m.get("status"))
                .and_then(Json::as_str),
            Some("error")
        );
        std::fs::remove_file(&path).unwrap();
    }
}
