//! The shared command-line front end for every `penelope-bench` binary.
//!
//! All eleven binaries funnel through [`run_main`]: flag parsing, the
//! scale/fault environment variables, the panic supervisor and — when a
//! report path is given — the telemetry recorder lifecycle. A binary's
//! `main` is one call naming its slug, artifact and paper section plus a
//! closure running the experiment.
//!
//! Accepted flags (shared by every binary):
//!
//! - `--scale <quick|standard|thorough>` — experiment size; overrides the
//!   `PENELOPE_SCALE` environment variable;
//! - `--jobs <N>` — worker threads for the parallel sweep engine
//!   (`penelope::par`); overrides `PENELOPE_JOBS`; defaults to the
//!   machine's available parallelism;
//! - `--json <path>` — write a machine-readable run report (schema in
//!   `penelope-telemetry`); overrides `PENELOPE_METRICS`;
//! - `-h` / `--help` — print usage and exit successfully.
//!
//! When a report path is active the recorder is installed before the
//! environment variables are resolved — so a malformed `PENELOPE_SCALE`,
//! `PENELOPE_JOBS` or `PENELOPE_FAULTS` lands in the report's `warnings`
//! array, not just on stderr — drivers contribute phases/series through
//! `penelope::obs`, and the finished report is validated and written even
//! when the experiment fails (with `"status": "error"` in the manifest).

use std::panic::{catch_unwind, UnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;

use penelope::error::Error;
use penelope::experiments::{efficiency_summary_faulted, Scale};
use penelope::fault::FaultPlan;
use penelope::par;
use penelope::report::render_efficiency;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, validate_report, Json};

/// Parses a scale name, case-insensitively and ignoring surrounding
/// whitespace. The empty string means "standard".
///
/// # Example
///
/// ```
/// assert_eq!(
///     penelope_bench::parse_scale("QUICK"),
///     Ok(penelope::experiments::Scale::quick()),
/// );
/// assert!(penelope_bench::parse_scale("enormous").is_err());
/// ```
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "" | "standard" => Ok(Scale::standard()),
        "quick" => Ok(Scale::quick()),
        "thorough" => Ok(Scale::thorough()),
        other => Err(format!(
            "unknown scale {other:?} (expected quick, standard or thorough)"
        )),
    }
}

/// The canonical name of a scale, for the run manifest. Scales that match
/// none of the presets (impossible through this CLI) read "custom".
pub fn scale_name(scale: Scale) -> &'static str {
    if scale == Scale::quick() {
        "quick"
    } else if scale == Scale::standard() {
        "standard"
    } else if scale == Scale::thorough() {
        "thorough"
    } else {
        "custom"
    }
}

/// Reports a degraded-mode fallback: on stderr for whoever is watching
/// the run, and into the run report's `warnings` array when a recorder is
/// installed (a no-op otherwise), so a batch consumer reading only the
/// JSON still learns the run did not execute as configured.
fn degraded(message: String) {
    eprintln!("{message}");
    recorder::warning(message);
}

/// Reads the experiment scale from `PENELOPE_SCALE` (default: standard).
/// Unrecognized values warn — on stderr and in the run report — and fall
/// back to the default.
pub fn scale_from_env() -> Scale {
    match std::env::var("PENELOPE_SCALE") {
        Ok(value) => parse_scale(&value).unwrap_or_else(|warning| {
            degraded(format!("PENELOPE_SCALE: {warning}; using standard"));
            Scale::standard()
        }),
        Err(_) => Scale::standard(),
    }
}

/// Parses a worker count for the parallel sweep engine: a positive
/// integer.
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "invalid job count {value:?} (expected a positive integer)"
        )),
        Ok(jobs) => Ok(jobs),
    }
}

/// Reads the worker count from `PENELOPE_JOBS`. Unset or empty means
/// "use the machine's available parallelism"; unparseable values warn —
/// on stderr and in the run report — and fall back the same way.
pub fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var("PENELOPE_JOBS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match parse_jobs(trimmed) {
        Ok(jobs) => Some(jobs),
        Err(warning) => {
            degraded(format!(
                "PENELOPE_JOBS: {warning}; using available parallelism"
            ));
            None
        }
    }
}

/// Reads a fault plan from `PENELOPE_FAULTS`: a `u64` seed expanding into
/// a seeded random [`FaultPlan`]. Unset or empty means no faults;
/// unparseable values warn — on stderr and in the run report — and
/// disable injection rather than abort.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let raw = std::env::var("PENELOPE_FAULTS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(seed) => Some(FaultPlan::random(seed)),
        Err(_) => {
            degraded(format!(
                "unparseable PENELOPE_FAULTS {trimmed:?} (expected a u64 seed); \
                 faults disabled"
            ));
            None
        }
    }
}

/// Prints a standard header naming the artifact being regenerated.
pub fn header(what: &str, paper_ref: &str, scale: Scale) {
    println!("=== Penelope reproduction: {what} ({paper_ref}) ===");
    println!(
        "scale: {} traces/suite x {} uops, time/{}\n",
        scale.traces_per_suite, scale.uops_per_trace, scale.time_scale
    );
}

/// Command-line options shared by every bench binary, after merging flags
/// with the environment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Args {
    scale: Option<Scale>,
    jobs: Option<usize>,
    json: Option<PathBuf>,
    help: bool,
}

/// Parses the shared flag set. Pure function over the argument list so it
/// is unit-testable; `run_main` feeds it `std::env::args().skip(1)`.
fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| {
            inline
                .clone()
                .or_else(|| iter.next())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--scale" => parsed.scale = Some(parse_scale(&value("--scale")?)?),
            "--jobs" => parsed.jobs = Some(parse_jobs(&value("--jobs")?)?),
            "--json" => parsed.json = Some(PathBuf::from(value("--json")?)),
            "-h" | "--help" => parsed.help = true,
            other => {
                return Err(format!("unknown argument {other:?} (try --help)"));
            }
        }
    }
    Ok(parsed)
}

fn usage(slug: &str) {
    println!(
        "USAGE: {slug} [--scale <quick|standard|thorough>] [--jobs <N>] [--json <path>]\n\
         \n\
         Options:\n\
         \x20 --scale <name>   experiment size (default: PENELOPE_SCALE or standard)\n\
         \x20 --jobs <N>       worker threads for experiment sweeps (default:\n\
         \x20                  PENELOPE_JOBS or the machine's available parallelism);\n\
         \x20                  results are identical at any setting\n\
         \x20 --json <path>    write a machine-readable run report (default: PENELOPE_METRICS)\n\
         \x20 -h, --help       print this help\n\
         \n\
         Environment:\n\
         \x20 PENELOPE_SCALE   scale when --scale is absent\n\
         \x20 PENELOPE_JOBS    worker threads when --jobs is absent\n\
         \x20 PENELOPE_METRICS report path when --json is absent\n\
         \x20 PENELOPE_FAULTS  u64 seed: replace the experiment with a seeded\n\
         \x20                  fault-injection run (always exits nonzero)"
    );
}

/// The report path after merging `--json` with `PENELOPE_METRICS`.
fn report_path(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| {
        let raw = std::env::var("PENELOPE_METRICS").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(PathBuf::from(trimmed))
        }
    })
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Runs one binary's experiment under the supervisor.
///
/// `slug` is the binary's short name (used in `--help` and the run
/// manifest), `what` the artifact being regenerated, `paper_ref` the paper
/// section. The closure receives the chosen scale and returns the rendered
/// report. Typed errors and panics are both reported to stderr with a
/// partial-results note and mapped to a nonzero exit code. When
/// `PENELOPE_FAULTS` is set the closure is bypassed: the seeded fault plan
/// runs through the full pipeline instead, and the process always exits
/// nonzero (see [`fault_plan_from_env`]).
///
/// With `--json <path>` (or `PENELOPE_METRICS=<path>`) the telemetry
/// recorder is active for the whole run and a validated JSON run report is
/// written to `path` on the way out — also on failure, with
/// `"status": "error"` in its manifest.
///
/// `--jobs <N>` (or `PENELOPE_JOBS=<N>`) sets the worker count for the
/// parallel sweep engine before the experiment starts; results and
/// reports are byte-identical at any setting outside wall-clock fields.
pub fn run_main(
    slug: &str,
    what: &str,
    paper_ref: &str,
    experiment: impl FnOnce(Scale) -> Result<String, Error> + UnwindSafe,
) -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{slug}: {message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        usage(slug);
        return ExitCode::SUCCESS;
    }
    let report = report_path(args.json);

    // Install the recorder before resolving the environment so that a
    // malformed PENELOPE_SCALE / PENELOPE_JOBS / PENELOPE_FAULTS fallback
    // is recorded in the report's `warnings` array, not just on stderr.
    if report.is_some() {
        recorder::install(Settings::default());
        recorder::manifest_entry("binary", Json::from(slug));
        recorder::manifest_entry("artifact", Json::from(what));
        recorder::manifest_entry("paper_ref", Json::from(paper_ref));
    }
    let scale = args.scale.unwrap_or_else(scale_from_env);
    if report.is_some() {
        recorder::manifest_entry("scale_name", Json::from(scale_name(scale)));
    }
    // The jobs count steers wall-clock only — it is deliberately kept out
    // of the manifest so reports stay byte-identical across --jobs
    // settings (the determinism contract in `penelope::par`).
    let jobs = args
        .jobs
        .or_else(jobs_from_env)
        .unwrap_or_else(par::available_parallelism);
    par::set_jobs(jobs);
    header(what, paper_ref, scale);

    let exit = if let Some(plan) = fault_plan_from_env() {
        recorder::manifest_entry("fault_seed", Json::from(plan.seed));
        run_faulted(what, scale, &plan)
    } else {
        match catch_unwind(move || experiment(scale)) {
            Ok(Ok(rendered)) => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
            Ok(Err(err)) => {
                eprintln!("{what}: experiment failed: {err}");
                eprintln!("{what}: no results were produced");
                ExitCode::FAILURE
            }
            Err(payload) => {
                eprintln!("{what}: experiment panicked: {}", panic_message(&*payload));
                eprintln!("{what}: partial results lost; this is a bug in the harness");
                ExitCode::FAILURE
            }
        }
    };

    match report {
        Some(path) => match write_report(slug, &path, exit == ExitCode::SUCCESS) {
            Ok(()) => exit,
            Err(message) => {
                eprintln!("{slug}: {message}");
                ExitCode::FAILURE
            }
        },
        None => exit,
    }
}

/// Detaches the recorder, stamps the run status, validates the report and
/// writes it (newline-terminated) to `path`.
fn write_report(slug: &str, path: &std::path::Path, ok: bool) -> Result<(), String> {
    recorder::manifest_entry("status", Json::from(if ok { "ok" } else { "error" }));
    let collector = recorder::finish()
        .ok_or("internal error: recorder vanished before the report was written")?;
    let report = build_report(&collector);
    validate_report(&report).map_err(|err| format!("built an invalid report: {err}"))?;
    let mut encoded = report.encode();
    encoded.push('\n');
    std::fs::write(path, encoded)
        .map_err(|err| format!("cannot write report to {}: {err}", path.display()))?;
    eprintln!("{slug}: run report written to {}", path.display());
    Ok(())
}

/// Executes a fault plan through the pipeline and reports the outcome.
/// Always returns failure: a faulted run never counts as a reproduction.
fn run_faulted(what: &str, scale: Scale, plan: &FaultPlan) -> ExitCode {
    eprintln!(
        "{what}: FAULT INJECTION ACTIVE (seed {}, {:?}) — robustness \
         exercise, not a reproduction",
        plan.seed, plan.kinds
    );
    let plan_clone = plan.clone();
    match catch_unwind(move || efficiency_summary_faulted(scale, &plan_clone)) {
        Ok(Ok(rows)) => {
            eprintln!("{what}: faulted run completed; results below are suspect");
            print!("{}", render_efficiency(&rows));
        }
        Ok(Err(err)) => {
            eprintln!("{what}: faulted run rejected with a typed error: {err}");
        }
        Err(payload) => {
            eprintln!(
                "{what}: faulted run PANICKED: {} — the error layer should \
                 have caught this; please report it",
                panic_message(&*payload)
            );
        }
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_scale_accepts_all_names_case_insensitively() {
        assert_eq!(parse_scale("quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("Quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("THOROUGH"), Ok(Scale::thorough()));
        assert_eq!(parse_scale(" standard "), Ok(Scale::standard()));
        assert_eq!(parse_scale(""), Ok(Scale::standard()));
    }

    #[test]
    fn parse_scale_rejects_unknown_names_with_context() {
        let err = parse_scale("enormous").unwrap_err();
        assert!(err.contains("enormous"));
        assert!(err.contains("quick"));
    }

    #[test]
    fn scale_names_round_trip() {
        for name in ["quick", "standard", "thorough"] {
            assert_eq!(scale_name(parse_scale(name).unwrap()), name);
        }
    }

    #[test]
    fn args_parse_both_flag_styles() {
        let parsed = parse_args(strings(&[
            "--scale", "quick", "--jobs", "4", "--json", "out.json",
        ]))
        .unwrap();
        assert_eq!(parsed.scale, Some(Scale::quick()));
        assert_eq!(parsed.jobs, Some(4));
        assert_eq!(parsed.json, Some(PathBuf::from("out.json")));
        assert!(!parsed.help);

        let parsed = parse_args(strings(&[
            "--scale=thorough",
            "--jobs=2",
            "--json=r/x.json",
        ]))
        .unwrap();
        assert_eq!(parsed.scale, Some(Scale::thorough()));
        assert_eq!(parsed.jobs, Some(2));
        assert_eq!(parsed.json, Some(PathBuf::from("r/x.json")));
    }

    #[test]
    fn jobs_parse_strictly() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 16 "), Ok(16));
        for bad in ["0", "-1", "two", "1.5", ""] {
            let err = parse_jobs(bad).unwrap_err();
            assert!(err.contains("positive integer"), "{bad:?}: {err}");
        }
        // The flag is strict: a bad --jobs is a parse error, not a warning.
        assert!(parse_args(strings(&["--jobs", "zero"]))
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn unparseable_jobs_env_warns_into_the_report() {
        // Only this test touches PENELOPE_JOBS, so the process-global
        // environment is not contended.
        std::env::set_var("PENELOPE_JOBS", "not-a-number");
        recorder::install(Settings::default());
        assert_eq!(jobs_from_env(), None, "garbage falls back to the default");
        let collector = recorder::finish().expect("installed above");
        std::env::remove_var("PENELOPE_JOBS");
        assert_eq!(collector.warnings.len(), 1);
        assert!(
            collector.warnings[0].contains("PENELOPE_JOBS"),
            "{:?}",
            collector.warnings
        );
    }

    #[test]
    fn args_reject_unknown_flags_and_missing_values() {
        assert!(parse_args(strings(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse_args(strings(&["--json"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(strings(&["--scale", "enormous"]))
            .unwrap_err()
            .contains("enormous"));
    }

    #[test]
    fn help_flags_are_recognized() {
        assert!(parse_args(strings(&["-h"])).unwrap().help);
        assert!(parse_args(strings(&["--help"])).unwrap().help);
        assert!(!parse_args(strings(&[])).unwrap().help);
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*payload), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*payload), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }

    #[test]
    fn report_writing_needs_an_installed_recorder() {
        let _ = recorder::finish();
        let err =
            write_report("test", std::path::Path::new("/nonexistent/x.json"), true).unwrap_err();
        assert!(err.contains("recorder"), "{err}");
    }

    #[test]
    fn written_reports_validate_and_carry_the_status() {
        let dir = std::env::temp_dir().join("penelope-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        recorder::install(Settings::default());
        recorder::manifest_entry("binary", Json::from("test"));
        recorder::record_run(1_000, 400);
        write_report("test", &path, false).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let report = penelope_telemetry::json::parse(&raw).unwrap();
        validate_report(&report).unwrap();
        assert_eq!(
            report
                .get("manifest")
                .and_then(|m| m.get("status"))
                .and_then(Json::as_str),
            Some("error")
        );
        std::fs::remove_file(&path).unwrap();
    }
}
