//! Shared helpers for the Penelope benchmark harness.
//!
//! Every `penelope-bench` binary regenerates one table or figure of the
//! paper, and they all share one front end, [`cli::run_main`]:
//!
//! - scale selection via `--scale` or the `PENELOPE_SCALE` environment
//!   variable (`quick`, `standard` — the default — or `thorough`; at any
//!   scale the *shape* of the paper's results is reproduced, larger scales
//!   reduce sampling noise);
//! - machine-readable run reports via `--json <path>` or
//!   `PENELOPE_METRICS=<path>`, produced by the `penelope-telemetry`
//!   recorder;
//! - parallel sweeps via `--jobs <N>` or `PENELOPE_JOBS=<N>` (default:
//!   all cores), wired to the `penelope::par` engine; results and
//!   telemetry are byte-identical to a serial run modulo wall-clock
//!   fields;
//! - a panic supervisor: drivers return typed errors, and anything that
//!   still panics is caught, reported as a partial-results failure and
//!   mapped to a nonzero exit code instead of an abort;
//! - fault injection: setting `PENELOPE_FAULTS=<u64 seed>` replaces the
//!   binary's experiment with a seeded random fault plan pushed through
//!   the full pipeline. A faulted run is a robustness exercise, not a
//!   reproduction, so it always exits nonzero after reporting what the
//!   fault did.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;

pub use cli::{
    fault_plan_from_env, header, jobs_from_env, parse_jobs, parse_scale, run_main, run_main_with,
    scale_from_env, scale_name, ExtraFlag,
};
