//! Shared helpers for the Penelope benchmark harness.
//!
//! Every `penelope-bench` binary regenerates one table or figure of the
//! paper. The experiment size is chosen with the `PENELOPE_SCALE`
//! environment variable: `quick`, `standard` (default) or `thorough`.
//! At any scale the *shape* of the paper's results is reproduced; larger
//! scales reduce sampling noise.
//!
//! Two robustness features are built into every binary via [`run_main`]:
//!
//! - a panic supervisor: drivers return typed errors, and anything that
//!   still panics is caught, reported as a partial-results failure and
//!   mapped to a nonzero exit code instead of an abort;
//! - fault injection: setting `PENELOPE_FAULTS=<u64 seed>` replaces the
//!   binary's experiment with a seeded random [`FaultPlan`] pushed through
//!   the full pipeline. A faulted run is a robustness exercise, not a
//!   reproduction, so it always exits nonzero after reporting what the
//!   fault did.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
use std::panic::{catch_unwind, UnwindSafe};
use std::process::ExitCode;

use penelope::error::Error;
use penelope::experiments::{efficiency_summary_faulted, Scale};
use penelope::fault::FaultPlan;
use penelope::report::render_efficiency;

/// Parses a scale name, case-insensitively and ignoring surrounding
/// whitespace. The empty string means "standard".
///
/// # Example
///
/// ```
/// assert_eq!(
///     penelope_bench::parse_scale("QUICK"),
///     Ok(penelope::experiments::Scale::quick()),
/// );
/// assert!(penelope_bench::parse_scale("enormous").is_err());
/// ```
///
/// # Errors
///
/// Returns a human-readable description of the rejected value.
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "" | "standard" => Ok(Scale::standard()),
        "quick" => Ok(Scale::quick()),
        "thorough" => Ok(Scale::thorough()),
        other => Err(format!(
            "unknown PENELOPE_SCALE {other:?} (expected quick, standard or thorough)"
        )),
    }
}

/// Reads the experiment scale from `PENELOPE_SCALE` (default: standard).
/// Unrecognized values warn on stderr and fall back to the default.
pub fn scale_from_env() -> Scale {
    match std::env::var("PENELOPE_SCALE") {
        Ok(value) => parse_scale(&value).unwrap_or_else(|warning| {
            eprintln!("{warning}; using standard");
            Scale::standard()
        }),
        Err(_) => Scale::standard(),
    }
}

/// Reads a fault plan from `PENELOPE_FAULTS`: a `u64` seed expanding into
/// a seeded random [`FaultPlan`]. Unset or empty means no faults;
/// unparseable values warn and disable injection rather than abort.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let raw = std::env::var("PENELOPE_FAULTS").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(seed) => Some(FaultPlan::random(seed)),
        Err(_) => {
            eprintln!(
                "unparseable PENELOPE_FAULTS {trimmed:?} (expected a u64 seed); \
                 faults disabled"
            );
            None
        }
    }
}

/// Prints a standard header naming the artifact being regenerated.
pub fn header(what: &str, paper_ref: &str, scale: Scale) {
    println!("=== Penelope reproduction: {what} ({paper_ref}) ===");
    println!(
        "scale: {} traces/suite x {} uops, time/{}\n",
        scale.traces_per_suite, scale.uops_per_trace, scale.time_scale
    );
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Runs one binary's experiment under the supervisor.
///
/// The closure receives the scale from the environment and returns the
/// rendered report. Typed errors and panics are both reported to stderr
/// with a partial-results note and mapped to a nonzero exit code. When
/// `PENELOPE_FAULTS` is set the closure is bypassed: the seeded fault plan
/// runs through the full pipeline instead, and the process always exits
/// nonzero (see [`fault_plan_from_env`]).
pub fn run_main(
    what: &str,
    paper_ref: &str,
    experiment: impl FnOnce(Scale) -> Result<String, Error> + UnwindSafe,
) -> ExitCode {
    let scale = scale_from_env();
    header(what, paper_ref, scale);
    if let Some(plan) = fault_plan_from_env() {
        return run_faulted(what, scale, &plan);
    }
    match catch_unwind(move || experiment(scale)) {
        Ok(Ok(rendered)) => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Ok(Err(err)) => {
            eprintln!("{what}: experiment failed: {err}");
            eprintln!("{what}: no results were produced");
            ExitCode::FAILURE
        }
        Err(payload) => {
            eprintln!("{what}: experiment panicked: {}", panic_message(&*payload));
            eprintln!("{what}: partial results lost; this is a bug in the harness");
            ExitCode::FAILURE
        }
    }
}

/// Executes a fault plan through the pipeline and reports the outcome.
/// Always returns failure: a faulted run never counts as a reproduction.
fn run_faulted(what: &str, scale: Scale, plan: &FaultPlan) -> ExitCode {
    eprintln!(
        "{what}: FAULT INJECTION ACTIVE (seed {}, {:?}) — robustness \
         exercise, not a reproduction",
        plan.seed, plan.kinds
    );
    let plan_clone = plan.clone();
    match catch_unwind(move || efficiency_summary_faulted(scale, &plan_clone)) {
        Ok(Ok(rows)) => {
            eprintln!("{what}: faulted run completed; results below are suspect");
            print!("{}", render_efficiency(&rows));
        }
        Ok(Err(err)) => {
            eprintln!("{what}: faulted run rejected with a typed error: {err}");
        }
        Err(payload) => {
            eprintln!(
                "{what}: faulted run PANICKED: {} — the error layer should \
                 have caught this; please report it",
                panic_message(&*payload)
            );
        }
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_accepts_all_names_case_insensitively() {
        assert_eq!(parse_scale("quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("Quick"), Ok(Scale::quick()));
        assert_eq!(parse_scale("THOROUGH"), Ok(Scale::thorough()));
        assert_eq!(parse_scale(" standard "), Ok(Scale::standard()));
        assert_eq!(parse_scale(""), Ok(Scale::standard()));
    }

    #[test]
    fn parse_scale_rejects_unknown_names_with_context() {
        let err = parse_scale("enormous").unwrap_err();
        assert!(err.contains("enormous"));
        assert!(err.contains("quick"));
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*payload), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*payload), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }
}
