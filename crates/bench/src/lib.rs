//! Shared helpers for the Penelope benchmark harness.
//!
//! Every `penelope-bench` binary regenerates one table or figure of the
//! paper. The experiment size is chosen with the `PENELOPE_SCALE`
//! environment variable: `quick`, `standard` (default) or `thorough`.
//! At any scale the *shape* of the paper's results is reproduced; larger
//! scales reduce sampling noise.

use penelope::experiments::Scale;

/// Reads the experiment scale from `PENELOPE_SCALE` (default: standard).
///
/// # Example
///
/// ```
/// std::env::remove_var("PENELOPE_SCALE");
/// assert_eq!(penelope_bench::scale_from_env(), penelope::experiments::Scale::standard());
/// ```
pub fn scale_from_env() -> Scale {
    match std::env::var("PENELOPE_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        Ok("thorough") => Scale::thorough(),
        Ok(other) if !other.is_empty() && other != "standard" => {
            eprintln!("unknown PENELOPE_SCALE {other:?}; using standard");
            Scale::standard()
        }
        _ => Scale::standard(),
    }
}

/// Prints a standard header naming the artifact being regenerated.
pub fn header(what: &str, paper_ref: &str) {
    println!("=== Penelope reproduction: {what} ({paper_ref}) ===");
    let scale = scale_from_env();
    println!(
        "scale: {} traces/suite x {} uops, time/{}\n",
        scale.traces_per_suite, scale.uops_per_trace, scale.time_scale
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_standard() {
        std::env::remove_var("PENELOPE_SCALE");
        assert_eq!(scale_from_env(), Scale::standard());
    }

    #[test]
    fn quick_scale_is_recognized() {
        std::env::set_var("PENELOPE_SCALE", "quick");
        assert_eq!(scale_from_env(), Scale::quick());
        std::env::remove_var("PENELOPE_SCALE");
    }
}
