//! Criterion benches for the individual NBTI mechanisms and an ablation of
//! the cache schemes (including the WayFixed variant the paper describes
//! but does not evaluate).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use penelope::cache_aware::{SchemeKind, SchemeRuntime};
use penelope::rinv::Rinv;
use penelope::technique::{balancing_value, KCounter, Technique};
use uarch::cache::{CacheConfig, SetAssocCache};
use uarch::regfile::{RegFileConfig, RegisterFile};

fn bench_cache_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/20k_accesses");
    for kind in [
        SchemeKind::Baseline,
        SchemeKind::set_fixed_50(10_000),
        SchemeKind::WayFixed {
            fraction: 0.5,
            rotation_period: 10_000,
        },
        SchemeKind::line_fixed_50(),
        SchemeKind::line_dynamic_60(0.02, 200),
    ] {
        group.bench_function(&kind.label(), move |b| {
            b.iter(|| {
                let config = kind.effective_cache(CacheConfig::dl0(32, 8));
                let mut cache = SetAssocCache::new(config);
                let mut scheme = SchemeRuntime::new(kind, 42);
                for now in 0..20_000u64 {
                    // A strided stream with periodic reuse.
                    let addr = (now % 700) * 64;
                    let out = cache.access(black_box(addr), now);
                    scheme.on_access(&mut cache, &out, now);
                    scheme.on_cycle(&mut cache, now);
                }
                black_box(cache.stats().misses())
            })
        });
    }
    group.finish();
}

fn bench_regfile(c: &mut Criterion) {
    c.bench_function("regfile/alloc_write_release", |b| {
        let mut rf = RegisterFile::new(RegFileConfig::integer());
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let preg = rf.allocate(now).expect("capacity");
            rf.write(preg, black_box(0xDEAD_BEEF), now);
            rf.release(preg, now);
            black_box(preg)
        })
    });
}

fn bench_techniques(c: &mut Criterion) {
    c.bench_function("technique/balancing_value", |b| {
        let mut rinv = Rinv::new(32, 64);
        rinv.set(0x5555_5555);
        let mut counter = KCounter::new(0.75);
        b.iter(|| {
            black_box(balancing_value(
                Technique::All1K(0.75),
                32,
                &rinv,
                &mut counter,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_cache_schemes,
    bench_regfile,
    bench_techniques
);
criterion_main!(benches);
