//! Criterion microbench for the word-parallel bit-residency kernel.
//!
//! `bitstats_record` times `BitResidency::record` (bit-sliced carry-save
//! SWAR) against `ScalarResidency::record` (the per-bit reference oracle)
//! over identical pseudo-random event streams at widths 32, 64 and 128.
//! The acceptance bar is a >=3x speedup at width 64; durations are drawn
//! from 1..=64 cycles, the regime pipeline events live in.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use uarch::bitstats::{BitResidency, ScalarResidency};

const EVENTS: usize = 4096;

/// Deterministic `(value, duration)` stream shared by both kernels.
fn stream() -> Vec<(u128, u64)> {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    (0..EVENTS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let value = u128::from(state) << 64 | u128::from(state.rotate_left(17));
            let duration = (state >> 58) + 1;
            (value, duration)
        })
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let events = stream();
    let mut group = c.benchmark_group("bitstats_record");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for width in [32usize, 64, 128] {
        let stream = events.clone();
        group.bench_function(&format!("swar/{width}"), move |b| {
            b.iter(|| {
                let mut acc = BitResidency::new(width);
                for &(value, duration) in &stream {
                    acc.record(black_box(value), black_box(duration));
                }
                black_box(acc.zero_cycles(0))
            })
        });
        let stream = events.clone();
        group.bench_function(&format!("scalar/{width}"), move |b| {
            b.iter(|| {
                let mut acc = ScalarResidency::new(width);
                for &(value, duration) in &stream {
                    acc.record(black_box(value), black_box(duration));
                }
                black_box(acc.zero_cycles(0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
