//! Criterion benches for the gate-level adder substrate: netlist
//! evaluation throughput and the Figure 4 pair search.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gatesim::adder::{LadnerFischerAdder, RippleCarryAdder};
use gatesim::stress::StressTracker;
use gatesim::vectors::{evaluate_all_pairs, SyntheticVector};

fn bench_adders(c: &mut Criterion) {
    let lf = LadnerFischerAdder::new(32);
    let rca = RippleCarryAdder::new(32);

    let mut group = c.benchmark_group("adder/add32");
    group.bench_function("ladner_fischer", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            let (s, _) = lf.add(
                black_box(x & 0xFFFF_FFFF),
                black_box(!x & 0xFFFF_FFFF),
                false,
            );
            black_box(s)
        })
    });
    group.bench_function("ripple_carry", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            let (s, _) = rca.add(
                black_box(x & 0xFFFF_FFFF),
                black_box(!x & 0xFFFF_FFFF),
                false,
            );
            black_box(s)
        })
    });
    group.finish();
}

fn bench_stress(c: &mut Criterion) {
    let lf = LadnerFischerAdder::new(32);
    c.bench_function("adder/stress_apply", |b| {
        let mut tracker = StressTracker::new(lf.netlist());
        let (a, bb, cin) = SyntheticVector::V8.operands(32);
        let assignment = lf.input_assignment(a, bb, cin);
        b.iter(|| tracker.apply(lf.netlist(), black_box(&assignment), 1))
    });
    // The whole Figure 4 search (28 pairs).
    c.bench_function("adder/fig4_pair_search", |b| {
        b.iter(|| black_box(evaluate_all_pairs(&lf)))
    });
}

criterion_group!(benches, bench_adders, bench_stress);
criterion_main!(benches);
