//! Criterion benches for the trace-driven pipeline: baseline simulation
//! throughput, and the overhead added by each Penelope mechanism's hooks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use penelope::obs::with_recording;
use penelope::processor::{build, PenelopeConfig};
use penelope::regfile_aware::RegfileIsvHooks;
use penelope::sched_aware::SchedulerHooks;
use penelope_telemetry::recorder::{self, Settings};
use tracegen::suite::Suite;
use tracegen::trace::TraceSpec;
use uarch::pipeline::{NoHooks, Pipeline, PipelineConfig};

const UOPS: usize = 10_000;

fn bench_pipeline(c: &mut Criterion) {
    let spec = TraceSpec::new(Suite::Multimedia, 0);

    let mut group = c.benchmark_group("pipeline/run_10k_uops");
    group.throughput(Throughput::Elements(UOPS as u64));

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            black_box(pipe.run(spec.generate(UOPS), &mut NoHooks))
        })
    });
    group.bench_function("regfile_isv", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            let mut hooks = RegfileIsvHooks::new(1024);
            black_box(pipe.run(spec.generate(UOPS), &mut hooks))
        })
    });
    group.bench_function("scheduler_balancer", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            let mut hooks = SchedulerHooks::paper_default(1024);
            black_box(pipe.run(spec.generate(UOPS), &mut hooks))
        })
    });
    group.bench_function("penelope_full", |b| {
        b.iter(|| {
            let config = PenelopeConfig::default();
            let (mut pipe, mut hooks) = build(&config).expect("valid config");
            black_box(pipe.run(spec.generate(UOPS), &mut hooks))
        })
    });
    // The zero-cost-when-disabled contract: with no recorder installed,
    // `with_recording` must run the same code as `penelope_full` above.
    group.bench_function("telemetry_disabled", |b| {
        let _ = recorder::finish();
        b.iter(|| {
            let config = PenelopeConfig::default();
            let (mut pipe, mut hooks) = build(&config).expect("valid config");
            black_box(with_recording(&mut hooks, |mut h| {
                pipe.run(spec.generate(UOPS), &mut h)
            }))
        })
    });
    // Same contract for the tracing layer: with no recorder installed a
    // `span!` site is one thread-local is-some check, and a dynamic-name
    // site must not even format its arguments.
    group.bench_function("spans_disabled", |b| {
        let _ = recorder::finish();
        b.iter(|| {
            let _run = penelope_telemetry::span!("bench: run {}", UOPS);
            let config = PenelopeConfig::default();
            let (mut pipe, mut hooks) = build(&config).expect("valid config");
            black_box(with_recording(&mut hooks, |mut h| {
                let _inner = penelope_telemetry::span!("bench: pipeline");
                pipe.run(spec.generate(UOPS), &mut h)
            }))
        })
    });
    // And the price when it is on, at the default sampling period.
    group.bench_function("telemetry_sampling", |b| {
        b.iter(|| {
            recorder::install(Settings::default());
            let config = PenelopeConfig::default();
            let (mut pipe, mut hooks) = build(&config).expect("valid config");
            let result = black_box(with_recording(&mut hooks, |mut h| {
                pipe.run(spec.generate(UOPS), &mut h)
            }));
            let _ = black_box(recorder::finish());
            result
        })
    });
    group.finish();
}

/// The event-driven core against its cycle-accurate differential oracle,
/// plus the chunked (structure-of-arrays) trace path — the three run
/// entry points must stay result-identical, so this group is the one
/// place their relative throughput is tracked.
fn bench_core_variants(c: &mut Criterion) {
    let spec = TraceSpec::new(Suite::Multimedia, 0);

    let mut group = c.benchmark_group("pipeline/core_10k_uops");
    group.throughput(Throughput::Elements(UOPS as u64));

    group.bench_function("cycle_accurate", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            black_box(pipe.run_cycle_accurate(spec.generate(UOPS), &mut NoHooks))
        })
    });
    group.bench_function("event_driven", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            black_box(pipe.run(spec.generate(UOPS), &mut NoHooks))
        })
    });
    group.bench_function("event_driven_chunked", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            let chunks = spec.generate_chunks(UOPS, tracegen::soa::DEFAULT_CHUNK);
            black_box(pipe.run_chunked(chunks, &mut NoHooks))
        })
    });
    group.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let spec = TraceSpec::new(Suite::Server, 0);
    let mut group = c.benchmark_group("tracegen/generate_10k_uops");
    group.throughput(Throughput::Elements(UOPS as u64));
    group.bench_function("server", |b| {
        b.iter(|| black_box(spec.generate(UOPS).count()))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_core_variants, bench_tracegen);
criterion_main!(benches);
