//! Property-based tests: structural invariants of the microarchitectural
//! substrates under arbitrary operation sequences.

use proptest::prelude::*;
use uarch::bitstats::{BitResidency, TrackedWord};
use uarch::cache::{CacheConfig, LineState, SetAssocCache};
use uarch::regfile::{RegFileConfig, RegisterFile};

#[derive(Debug, Clone)]
enum RfOp {
    Allocate,
    Release(usize),
    Write(usize, u64),
}

fn rf_op() -> impl Strategy<Value = RfOp> {
    prop_oneof![
        Just(RfOp::Allocate),
        (0usize..16).prop_map(RfOp::Release),
        ((0usize..16), any::<u64>()).prop_map(|(i, v)| RfOp::Write(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn regfile_free_plus_busy_is_constant(ops in prop::collection::vec(rf_op(), 0..200)) {
        let config = RegFileConfig {
            entries: 16,
            width: 32,
            write_ports: 2,
        };
        let mut rf = RegisterFile::new(config);
        let mut busy: Vec<u16> = Vec::new();
        let mut now = 0;
        for op in ops {
            now += 1;
            match op {
                RfOp::Allocate => {
                    if let Some(p) = rf.allocate(now) {
                        prop_assert!(!busy.contains(&p), "double allocation of {p}");
                        busy.push(p);
                    } else {
                        prop_assert_eq!(busy.len(), 16, "refused allocation while free");
                    }
                }
                RfOp::Release(i) => {
                    if !busy.is_empty() {
                        let p = busy.remove(i % busy.len());
                        rf.release(p, now);
                    }
                }
                RfOp::Write(i, v) => {
                    if !busy.is_empty() {
                        let p = busy[i % busy.len()];
                        rf.write(p, u128::from(v), now);
                    }
                }
            }
            prop_assert_eq!(rf.free_count() + busy.len(), 16);
            for &p in &busy {
                prop_assert!(rf.is_busy(p));
            }
        }
    }

    #[test]
    fn cache_never_stores_duplicate_valid_tags(addrs in prop::collection::vec(0u64..0x40_000, 1..300)) {
        let mut cache = SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
        });
        for (now, addr) in addrs.iter().enumerate() {
            cache.access(*addr, now as u64);
            // Re-access must hit: the line was just filled.
            let again = cache.access(*addr, now as u64);
            prop_assert!(again.hit, "immediate re-access missed at {addr:#x}");
        }
        // Per-set uniqueness of valid tags: hits are unambiguous even at
        // the far end of the clock (the recency stamp saturates).
        let far = addrs.len() as u64 + 10;
        for addr in &addrs {
            let _ = cache.access(*addr, far);
        }
        let _ = cache.access(addrs[0], u64::MAX - 1);
        let _ = cache.access(addrs[0], u64::MAX - 1);
    }

    #[test]
    fn cache_stats_are_consistent(addrs in prop::collection::vec(0u64..0x8_000, 1..400)) {
        let mut cache = SetAssocCache::new(CacheConfig {
            size_bytes: 2048,
            ways: 2,
            line_bytes: 64,
        });
        for (now, addr) in addrs.iter().enumerate() {
            cache.access(*addr, now as u64);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert!(stats.hits <= stats.accesses);
        let by_position: u64 = stats.hit_positions.iter().sum();
        prop_assert_eq!(by_position, stats.hits);
    }

    #[test]
    fn inverted_count_matches_line_scan(
        addrs in prop::collection::vec(0u64..0x8_000, 1..120),
        inversions in prop::collection::vec(0usize..16, 0..40)
    ) {
        let mut cache = SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
        });
        let mut now = 0u64;
        for addr in &addrs {
            now += 1;
            cache.access(*addr, now);
        }
        for set in inversions {
            now += 1;
            let _ = cache.invert_line_in(set % cache.set_count(), now);
        }
        let scan = (0..cache.set_count())
            .flat_map(|s| (0..cache.ways()).map(move |w| (s, w)))
            .filter(|&(s, w)| cache.line_state(s, w) == LineState::Inverted)
            .count();
        prop_assert_eq!(cache.inverted_count(), scan);
        // Valid + inverted never exceeds capacity.
        prop_assert!(cache.valid_count() + cache.inverted_count() <= 64);
    }

    #[test]
    fn bit_residency_time_is_conserved(writes in prop::collection::vec((any::<u64>(), 1u64..100), 1..50)) {
        let mut residency = BitResidency::new(64);
        let mut word = TrackedWord::new(0, 0);
        let mut now = 0;
        for (value, dt) in &writes {
            now += dt;
            word.write(u128::from(*value), now, &mut residency);
        }
        prop_assert_eq!(residency.total_time(), now);
        for bit in 0..64 {
            let b = residency.bias(bit).fraction();
            prop_assert!((0.0..=1.0).contains(&b));
        }
    }
}
