//! Differential property suite for the word-parallel residency kernel.
//!
//! `BitResidency` (bit-sliced carry-save SWAR) and `ScalarResidency` (the
//! original per-bit loop, kept as a reference oracle) are driven with
//! identical event streams — random `(value, duration)` records,
//! interleaved merges and `TrackedWord` write/flush traffic, durations
//! straddling the plane-flush boundary — and must agree on every exact
//! integer count, at every width the simulator uses and at the word-size
//! edges (1, 63, 64, 65, 127, 128).

use proptest::prelude::*;
use uarch::bitstats::{BitResidency, ScalarResidency, TrackedWord};

/// Boundary widths: 1 (degenerate), 63/64/65 (u64 edges), 127/128 (u128
/// edges).
const WIDTHS: [usize; 6] = [1, 63, 64, 65, 127, 128];

/// Maximum duration the carry-save planes hold before flushing (2^32 − 1,
/// mirrored from the kernel).
const PLANE_CAPACITY: u64 = (1 << 32) - 1;

fn any_u128() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| (u128::from(hi) << 64) | u128::from(lo))
}

/// Durations biased across the interesting magnitudes: zero, small dense
/// values, sparse large values, and plane-capacity overflow.
fn any_duration() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..64,
        1u64..100_000,
        (0u64..=3).prop_map(|d| PLANE_CAPACITY - 1 + d),
        (any::<u32>(), 0u64..=1).prop_map(|(lo, hi)| u64::from(lo) | (hi << 33)),
    ]
}

fn check_exact_agreement(
    swar: &BitResidency,
    scalar: &ScalarResidency,
    width: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(swar.width(), width);
    prop_assert_eq!(swar.total_time(), scalar.total_time());
    for bit in 0..width {
        prop_assert_eq!(
            swar.zero_cycles(bit),
            scalar.zero_cycles(bit),
            "zero count of bit {} diverged",
            bit
        );
        prop_assert_eq!(swar.bias(bit), scalar.bias(bit), "bias of bit {}", bit);
    }
    prop_assert_eq!(swar.worst_cell_duty(), scalar.worst_cell_duty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_streams_agree_exactly(
        width_index in 0usize..WIDTHS.len(),
        events in prop::collection::vec((any_u128(), any_duration()), 0..200),
    ) {
        let width = WIDTHS[width_index];
        let mut swar = BitResidency::new(width);
        let mut scalar = ScalarResidency::new(width);
        for &(value, duration) in &events {
            swar.record(value, duration);
            scalar.record(value, duration);
        }
        check_exact_agreement(&swar, &scalar, width)?;
    }

    #[test]
    fn interleaved_merges_agree_exactly(
        width_index in 0usize..WIDTHS.len(),
        // Each chunk records into a fresh accumulator pair which is then
        // merged into the running aggregate — the parallel sweep engine's
        // cell-merge pattern.
        chunks in prop::collection::vec(
            prop::collection::vec((any_u128(), any_duration()), 0..24),
            0..12,
        ),
    ) {
        let width = WIDTHS[width_index];
        let mut swar_total = BitResidency::new(width);
        let mut scalar_total = ScalarResidency::new(width);
        for chunk in &chunks {
            let mut swar = BitResidency::new(width);
            let mut scalar = ScalarResidency::new(width);
            for &(value, duration) in chunk {
                swar.record(value, duration);
                scalar.record(value, duration);
            }
            // Merge while both sides still hold pending plane state.
            swar_total.merge(&swar);
            scalar_total.merge(&scalar);
        }
        check_exact_agreement(&swar_total, &scalar_total, width)?;
    }

    #[test]
    fn tracked_word_flush_traffic_agrees_exactly(
        width_index in 0usize..WIDTHS.len(),
        steps in prop::collection::vec((any_u128(), 0u64..10_000, any::<bool>()), 0..150),
    ) {
        // Event-driven accounting as the pipeline produces it: a word is
        // written (or flushed for a measurement) at monotonically
        // increasing times; the residency charge is (now − since) per
        // event. The oracle replays the same charges through the scalar
        // loop.
        let width = WIDTHS[width_index];
        let mask = if width == 128 { u128::MAX } else { (1u128 << width) - 1 };
        let mut swar = BitResidency::new(width);
        let mut scalar = ScalarResidency::new(width);
        let mut word = TrackedWord::new(0, 0);
        let mut now = 0u64;
        for &(value, advance, is_write) in &steps {
            now += advance;
            let held = word.value();
            let duration = now - word.since();
            if is_write {
                word.write(value, now, &mut swar);
            } else {
                word.flush(now, &mut swar);
            }
            scalar.record(held, duration);
            // Only the in-range bits matter for either implementation.
            let _ = held & mask;
        }
        check_exact_agreement(&swar, &scalar, width)?;
    }

    #[test]
    fn equality_is_representation_independent(
        width_index in 0usize..WIDTHS.len(),
        events in prop::collection::vec((any_u128(), 1u64..1000), 1..40),
    ) {
        // The same stream charged in different event granularity (one
        // record per event vs duration split into two records) leaves
        // different carry-save plane states but must compare equal.
        let width = WIDTHS[width_index];
        let mut whole = BitResidency::new(width);
        let mut split = BitResidency::new(width);
        for &(value, duration) in &events {
            whole.record(value, duration);
            let half = duration / 2;
            split.record(value, half);
            split.record(value, duration - half);
        }
        prop_assert_eq!(&whole, &split);
        prop_assert_eq!(&split, &whole);
    }
}

#[test]
fn plane_capacity_boundary_is_exact_on_both_paths() {
    // Deterministic sweep of the flush/overflow edge: accumulate to just
    // below capacity, then cross it with single-cycle, exact-fit and
    // oversized events.
    for &extra in &[1u64, 2, 17, PLANE_CAPACITY, PLANE_CAPACITY + 5] {
        let mut swar = BitResidency::new(65);
        let mut scalar = ScalarResidency::new(65);
        for (value, duration) in [
            (0x5555_5555_5555_5555u128, PLANE_CAPACITY - 1),
            (!0x5555_5555_5555_5555u128, extra),
            (0u128, 3),
        ] {
            swar.record(value, duration);
            scalar.record(value, duration);
        }
        assert_eq!(swar.total_time(), scalar.total_time(), "extra={extra}");
        for bit in 0..65 {
            assert_eq!(
                swar.zero_cycles(bit),
                scalar.zero_cycles(bit),
                "bit {bit}, extra={extra}"
            );
        }
    }
}

#[test]
#[ignore = "wall-clock benchmark; run with: cargo test --release --test bitstats_prop -- --ignored"]
fn swar_kernel_is_at_least_3x_faster_at_width_64() {
    use std::hint::black_box;
    use std::time::Instant;

    // The acceptance microbench, runnable without Criterion: identical
    // pseudo-random event streams through both kernels at width 64.
    // Durations are 1..=64 cycles — the regime pipeline events live in,
    // where popcount(duration) stays small.
    const EVENTS: usize = 200_000;
    const ROUNDS: usize = 5;
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let stream: Vec<(u128, u64)> = (0..EVENTS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let value = u128::from(state) << 64 | u128::from(state.rotate_left(17));
            let duration = (state >> 58) + 1;
            (value, duration)
        })
        .collect();

    let time_scalar = |stream: &[(u128, u64)]| {
        let start = Instant::now();
        let mut acc = ScalarResidency::new(64);
        for &(value, duration) in stream {
            acc.record(value, duration);
        }
        black_box(acc.zero_cycles(0));
        start.elapsed()
    };
    let time_swar = |stream: &[(u128, u64)]| {
        let start = Instant::now();
        let mut acc = BitResidency::new(64);
        for &(value, duration) in stream {
            acc.record(value, duration);
        }
        black_box(acc.zero_cycles(0));
        start.elapsed()
    };

    // Warm up, then take the best of several rounds for each kernel.
    let _ = (time_scalar(&stream), time_swar(&stream));
    let scalar = (0..ROUNDS).map(|_| time_scalar(&stream)).min().unwrap();
    let swar = (0..ROUNDS).map(|_| time_swar(&stream)).min().unwrap();
    assert!(
        swar.as_secs_f64() * 3.0 <= scalar.as_secs_f64(),
        "expected >=3x: scalar {scalar:?}, swar {swar:?}"
    );
}
