//! Degenerate-input regression tests: empty and single-uop traces through
//! both pipeline loops must produce finite statistics, and zero-span
//! residency windows must report duty 0.0 instead of NaN.
//!
//! These pin the `total_time == 0` / `span == 0` guards in
//! `uarch::bitstats` — a fleet profiling pass over a trivial workload must
//! never leak NaN into the aging model.

use tracegen::suite::Suite;
use tracegen::trace::TraceSpec;
use uarch::pipeline::{NoHooks, Pipeline, PipelineConfig, RunResult};

fn pipeline() -> Pipeline {
    Pipeline::try_new(PipelineConfig::default()).expect("default configuration is valid")
}

/// Every duty readout a driver consumes after a run, asserted finite and
/// in range.
fn assert_finite_duties(pipe: &mut Pipeline, result: &RunResult) {
    assert!(result.cpi().is_finite(), "cpi must be finite: {result:?}");
    let now = pipe.now();
    pipe.parts.int_rf.sync(now);
    pipe.parts.fp_rf.sync(now);
    pipe.parts.sched.sync(now);
    for (name, bias) in [
        ("int_rf", pipe.parts.int_rf.residency().biases()),
        ("fp_rf", pipe.parts.fp_rf.residency().biases()),
    ] {
        for (bit, duty) in bias.iter().enumerate() {
            let f = duty.fraction();
            assert!(
                f.is_finite() && (0.0..=1.0).contains(&f),
                "{name} bit {bit}: bias {f} out of range"
            );
        }
    }
    for rf in [&pipe.parts.int_rf, &pipe.parts.fp_rf] {
        let worst = rf.residency().worst_cell_duty().fraction();
        assert!(
            worst.is_finite() && (0.0..=1.0).contains(&worst),
            "worst cell duty {worst} out of range"
        );
    }
    let occupancy = pipe.parts.sched.occupancy_at(now);
    assert!(
        occupancy.is_finite() && (0.0..=1.0).contains(&occupancy),
        "scheduler occupancy {occupancy} out of range"
    );
}

#[test]
fn a_fresh_pipeline_reports_zero_duty_not_nan() {
    // Zero observed span: no run at all. Every bias must be exactly 0.0
    // (the documented degenerate-window answer), never NaN from 0/0.
    let mut pipe = pipeline();
    let now = pipe.now();
    pipe.parts.int_rf.sync(now);
    assert_eq!(pipe.parts.int_rf.residency().total_time(), 0);
    for duty in pipe.parts.int_rf.residency().biases() {
        assert_eq!(duty.fraction(), 0.0, "zero-span bias must be 0.0");
    }
    assert_eq!(pipe.parts.sched.occupancy_at(now), 0.0);
}

#[test]
fn an_empty_trace_runs_cleanly_through_the_event_driven_loop() {
    let mut pipe = pipeline();
    let result = pipe.run(std::iter::empty(), &mut NoHooks);
    assert_eq!(result.uops, 0);
    assert_eq!(result.cpi(), 0.0, "cpi of an empty run is defined as 0.0");
    assert_finite_duties(&mut pipe, &result);
}

#[test]
fn an_empty_trace_runs_cleanly_through_the_cycle_accurate_loop() {
    let mut pipe = pipeline();
    let result = pipe.run_cycle_accurate(std::iter::empty(), &mut NoHooks);
    assert_eq!(result.uops, 0);
    assert_eq!(result.cpi(), 0.0);
    assert_finite_duties(&mut pipe, &result);
}

#[test]
fn a_single_uop_trace_runs_cleanly_through_both_loops() {
    let trace = TraceSpec::new(Suite::Office, 0);
    let mut event = pipeline();
    let fast = event.run(trace.generate(1), &mut NoHooks);
    assert_eq!(fast.uops, 1);
    assert_finite_duties(&mut event, &fast);

    let mut reference = pipeline();
    let slow = reference.run_cycle_accurate(trace.generate(1), &mut NoHooks);
    assert_eq!(slow.uops, 1);
    assert_finite_duties(&mut reference, &slow);

    // The event-driven loop is observably identical to the reference even
    // on a one-uop trace (all drain, no steady state).
    assert_eq!(fast, slow);
}
