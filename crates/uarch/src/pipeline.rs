//! Trace-driven out-of-order pipeline model.
//!
//! A compact Core™-like model: per cycle it retires finished uops, issues
//! ready uops over five ports, and allocates up to `alloc_width` new uops
//! from the trace (rename + scheduler capture + MOB id). It is *statistical*
//! rather than functionally exact — results come from the trace, not from
//! executing operations — but the quantities the paper's evaluation rests on
//! are modeled faithfully:
//!
//! - CPI and its sensitivity to DL0/DTLB misses (Table 3);
//! - scheduler occupancy (~63%) and data-field occupancy (§4.5);
//! - register-file free time (54% INT / 69% FP) and write-port
//!   availability at release (92% / 86%, §4.4);
//! - per-adder utilization (11–30% depending on the allocation policy,
//!   §4.3), with an adder on each integer-ALU and address-generation port.
//!
//! NBTI mechanisms attach through the [`Hooks`] trait, which receives
//! events (releases, cache fills, cycle boundaries) with mutable access to
//! the structures — exactly the points where Penelope's balancing writes
//! happen.

use crate::btb::Btb;
use crate::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use crate::error::{validate_cache, validate_regfile, PipelineError};
use crate::mob::MobAllocator;
use crate::regfile::{PhysReg, RegFileConfig, RegisterFile};
use crate::scheduler::{DataUsage, EntryValues, Field, Scheduler, SlotId};
use crate::tlb::Dtlb;
use tracegen::uop::{Uop, UopClass};

/// Which register file an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// The integer register file.
    Int,
    /// The FP register file.
    Fp,
}

/// How integer-ALU uops are spread over the three ALU ports (0, 1 and 4).
///
/// §4.3: "if additions are allocated to adders with priorities, the
/// utilization of the adders ranges between 11% and 30%, but if additions
/// are distributed uniformly across adders, the utilization of adders
/// is 21%".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdderPolicy {
    /// Round-robin over the ALU ports (uniform utilization).
    #[default]
    Uniform,
    /// Lowest-numbered ALU port first (skewed utilization).
    Prioritized,
}

/// Pipeline parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Uops allocated per cycle.
    pub alloc_width: u8,
    /// Scheduler entries.
    pub sched_entries: usize,
    /// Scheduler allocation ports.
    pub sched_ports: u8,
    /// Integer register file.
    pub int_rf: RegFileConfig,
    /// FP register file.
    pub fp_rf: RegFileConfig,
    /// First-level data cache geometry.
    pub dl0: CacheConfig,
    /// Optional unified second-level cache. When present, a DL0 miss that
    /// hits the L2 pays `dl0_miss_penalty`, and an L2 miss pays
    /// `l2_miss_penalty` on top.
    pub l2: Option<CacheConfig>,
    /// Extra cycles when a DL0 miss also misses the L2.
    pub l2_miss_penalty: u64,
    /// DTLB entries.
    pub dtlb_entries: u32,
    /// DTLB associativity.
    pub dtlb_ways: u16,
    /// BTB entries.
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_ways: u16,
    /// Front-end bubble when a taken branch misses the BTB.
    pub btb_miss_penalty: u64,
    /// Extra cycles on a DL0 miss.
    pub dl0_miss_penalty: u64,
    /// Extra cycles on a DTLB miss.
    pub dtlb_miss_penalty: u64,
    /// Cycles between writeback and physical-register release (commit lag).
    pub release_delay: u64,
    /// Front-end bubble after a mispredicted branch allocates.
    pub mispredict_penalty: u64,
    /// ALU port selection policy.
    pub adder_policy: AdderPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            alloc_width: 4,
            sched_entries: Scheduler::PAPER_ENTRIES,
            sched_ports: 4,
            int_rf: RegFileConfig::integer(),
            fp_rf: RegFileConfig::floating_point(),
            dl0: CacheConfig::dl0(32, 8),
            l2: None,
            l2_miss_penalty: 40,
            dtlb_entries: 128,
            dtlb_ways: 8,
            btb_entries: 512,
            btb_ways: 4,
            btb_miss_penalty: 2,
            dl0_miss_penalty: 12,
            dtlb_miss_penalty: 30,
            release_delay: 16,
            mispredict_penalty: 20,
            adder_policy: AdderPolicy::Uniform,
        }
    }
}

/// The microarchitectural structures, bundled so hooks can receive mutable
/// access to all of them at cycle boundaries.
#[derive(Debug)]
pub struct Parts {
    /// Integer physical register file.
    pub int_rf: RegisterFile,
    /// FP physical register file.
    pub fp_rf: RegisterFile,
    /// The scheduler.
    pub sched: Scheduler,
    /// First-level data cache.
    pub dl0: SetAssocCache,
    /// Second-level cache, if configured.
    pub l2: Option<SetAssocCache>,
    /// Data TLB.
    pub dtlb: Dtlb,
    /// Branch target buffer.
    pub btb: Btb,
    /// MOB id allocator.
    pub mob: MobAllocator,
}

/// Observer/actuator interface for NBTI mechanisms.
///
/// All methods have empty defaults; implement only what the mechanism
/// needs. Methods receive mutable structure references so balancing writes
/// can reuse idle ports in the same cycle as the triggering event.
pub trait Hooks {
    /// A physical register was released (its content remains).
    fn regfile_released(
        &mut self,
        _rf: &mut RegisterFile,
        _class: RegClass,
        _preg: PhysReg,
        _now: u64,
    ) {
    }

    /// A value was architecturally written to a register (sampling point
    /// for RINV).
    fn regfile_written(
        &mut self,
        _rf: &mut RegisterFile,
        _class: RegClass,
        _preg: PhysReg,
        _value: u128,
        _now: u64,
    ) {
    }

    /// A scheduler slot was released (its contents remain).
    fn scheduler_released(&mut self, _sched: &mut Scheduler, _slot: SlotId, _now: u64) {}

    /// A scheduler slot was allocated with the given captured values.
    fn scheduler_allocated(
        &mut self,
        _sched: &mut Scheduler,
        _slot: SlotId,
        _values: &EntryValues,
        _now: u64,
    ) {
    }

    /// The DL0 completed an access (hit or fill).
    fn dl0_accessed(&mut self, _dl0: &mut SetAssocCache, _outcome: &AccessOutcome, _now: u64) {}

    /// The L2 completed an access (only on DL0 misses, when configured).
    fn l2_accessed(&mut self, _l2: &mut SetAssocCache, _outcome: &AccessOutcome, _now: u64) {}

    /// The DTLB completed an access (hit or fill).
    fn dtlb_accessed(&mut self, _dtlb: &mut Dtlb, _outcome: &AccessOutcome, _now: u64) {}

    /// The BTB completed a lookup (hit or train).
    fn btb_accessed(&mut self, _btb: &mut Btb, _outcome: &AccessOutcome, _now: u64) {}

    /// End of cycle; periodic maintenance goes here.
    fn cycle_end(&mut self, _parts: &mut Parts, _now: u64) {}
}

/// A no-op hook set: the unmodified baseline processor.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {}

/// Forwarding impl so hook chains can be composed by mutable borrow: a
/// wrapper (telemetry, fault injection) can hold `&mut H` instead of
/// taking ownership of the chain it instruments.
impl<H: Hooks + ?Sized> Hooks for &mut H {
    fn regfile_released(
        &mut self,
        rf: &mut RegisterFile,
        class: RegClass,
        preg: PhysReg,
        now: u64,
    ) {
        (**self).regfile_released(rf, class, preg, now);
    }

    fn regfile_written(
        &mut self,
        rf: &mut RegisterFile,
        class: RegClass,
        preg: PhysReg,
        value: u128,
        now: u64,
    ) {
        (**self).regfile_written(rf, class, preg, value, now);
    }

    fn scheduler_released(&mut self, sched: &mut Scheduler, slot: SlotId, now: u64) {
        (**self).scheduler_released(sched, slot, now);
    }

    fn scheduler_allocated(
        &mut self,
        sched: &mut Scheduler,
        slot: SlotId,
        values: &EntryValues,
        now: u64,
    ) {
        (**self).scheduler_allocated(sched, slot, values, now);
    }

    fn dl0_accessed(&mut self, dl0: &mut SetAssocCache, outcome: &AccessOutcome, now: u64) {
        (**self).dl0_accessed(dl0, outcome, now);
    }

    fn l2_accessed(&mut self, l2: &mut SetAssocCache, outcome: &AccessOutcome, now: u64) {
        (**self).l2_accessed(l2, outcome, now);
    }

    fn dtlb_accessed(&mut self, dtlb: &mut Dtlb, outcome: &AccessOutcome, now: u64) {
        (**self).dtlb_accessed(dtlb, outcome, now);
    }

    fn btb_accessed(&mut self, btb: &mut Btb, outcome: &AccessOutcome, now: u64) {
        (**self).btb_accessed(btb, outcome, now);
    }

    fn cycle_end(&mut self, parts: &mut Parts, now: u64) {
        (**self).cycle_end(parts, now);
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    class: UopClass,
    fp: bool,
    /// (new mapping, previous mapping of the same arch reg).
    dst: Option<(PhysReg, Option<PhysReg>)>,
    result: u128,
    src1: Option<PhysReg>,
    src2: Option<PhysReg>,
    ready1: bool,
    ready2: bool,
    port: u8,
    issued: bool,
    finish_at: u64,
    mem_addr: Option<u64>,
    mob: Option<u8>,
    seq: u64,
}

/// Aggregate results of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Uops retired.
    pub uops: u64,
    /// Per-port issue counts (ports 0..4).
    pub port_issues: [u64; 5],
    /// Per-port *adder operations* (IntAlu on the ALU ports, address
    /// generations on the memory ports): the basis of the §4.3 utilization
    /// figures.
    pub adder_ops: [u64; 5],
}

impl RunResult {
    /// Cycles per uop.
    pub fn cpi(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.uops as f64
        }
    }

    /// Utilization of the adder on each port (integer adders on ports 0 and
    /// 1; AGU adders on ports 2 and 3; port 4 has no adder).
    pub fn adder_utilization(&self) -> [f64; 5] {
        let mut u = [0.0; 5];
        if self.cycles > 0 {
            for (i, &n) in self.adder_ops.iter().enumerate() {
                u[i] = n as f64 / self.cycles as f64;
            }
        }
        u
    }

    /// Mean utilization over the four adder-bearing ports.
    pub fn mean_adder_utilization(&self) -> f64 {
        let u = self.adder_utilization();
        (u[0] + u[1] + u[2] + u[3]) / 4.0
    }

    /// Worst per-adder utilization (the §4.3 "allocated with priorities"
    /// case is judged by its most used adder).
    pub fn max_adder_utilization(&self) -> f64 {
        self.adder_utilization().into_iter().fold(0.0, f64::max)
    }

    /// Merges another run into this one (multi-trace campaigns).
    pub fn merge(&mut self, other: &RunResult) {
        self.cycles += other.cycles;
        self.uops += other.uops;
        for (a, b) in self.port_issues.iter_mut().zip(&other.port_issues) {
            *a += b;
        }
        for (a, b) in self.adder_ops.iter_mut().zip(&other.adder_ops) {
            *a += b;
        }
    }
}

/// The pipeline: owns the structures and the clock; runs traces.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    /// The structures, exposed for statistics and mechanisms.
    pub parts: Parts,
    now: u64,
    seq: u64,
    int_map: [PhysReg; 16],
    fp_map: [PhysReg; 8],
    int_ready: Vec<bool>,
    fp_ready: Vec<bool>,
    in_flight: Vec<Option<InFlight>>,
    pending_release: Vec<(u64, RegClass, PhysReg)>,
    stall_until: u64,
    alu_rr: u8,
    agu_rr: u8,
    slot_rr: usize,
    uops_retired: u64,
    port_issues: [u64; 5],
    adder_ops: [u64; 5],
}

/// The three integer-ALU ports (each with an adder, Core-like); ports 2/3
/// carry the AGU adders; port 4 doubles as the branch port.
const ALU_PORTS: [u8; 3] = [0, 1, 4];

impl Pipeline {
    /// Builds a pipeline; the architectural registers are pre-mapped and
    /// initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration; use [`Pipeline::try_new`] for
    /// a panic-free, typed-error construction path.
    pub fn new(config: PipelineConfig) -> Self {
        match Pipeline::try_new(config) {
            Ok(pipe) => pipe,
            Err(err) => panic!("invalid pipeline configuration: {err}"),
        }
    }

    /// Checks a configuration without building anything: every structure
    /// geometry must be instantiable and the pipeline must be able to make
    /// forward progress (nonzero allocation width, register files larger
    /// than the pre-mapped architectural state).
    pub fn validate(config: &PipelineConfig) -> Result<(), PipelineError> {
        if config.alloc_width == 0 {
            return Err(PipelineError::ZeroAllocWidth);
        }
        if config.sched_entries == 0 {
            return Err(PipelineError::NoSchedulerEntries);
        }
        if config.sched_ports == 0 {
            return Err(PipelineError::NoSchedulerPorts);
        }
        validate_regfile("integer", &config.int_rf, 16)?;
        validate_regfile("FP", &config.fp_rf, 8)?;
        validate_cache("DL0", &config.dl0)?;
        if let Some(l2) = &config.l2 {
            validate_cache("L2", l2)?;
        }
        // The DTLB and BTB are built from entry counts; check the cache
        // geometries they expand to.
        validate_cache(
            "DTLB",
            &CacheConfig::dtlb(config.dtlb_entries, config.dtlb_ways),
        )?;
        validate_cache(
            "BTB",
            &CacheConfig {
                size_bytes: u64::from(config.btb_entries) * 4,
                ways: config.btb_ways,
                line_bytes: 4,
            },
        )?;
        Ok(())
    }

    /// Builds a pipeline, rejecting degenerate configurations with a typed
    /// error instead of panicking (or hanging) mid-run.
    #[allow(clippy::expect_used)] // arch-state allocations validated below
    pub fn try_new(config: PipelineConfig) -> Result<Self, PipelineError> {
        Pipeline::validate(&config)?;
        let mut int_rf = RegisterFile::new(config.int_rf);
        let mut fp_rf = RegisterFile::new(config.fp_rf);
        let mut int_map = [0; 16];
        let mut fp_map = [0; 8];
        // validate() guarantees both files exceed the architectural state,
        // so these allocations cannot fail.
        for slot in &mut int_map {
            *slot = int_rf
                .allocate(0)
                .expect("validated: integer RF holds arch state");
        }
        for slot in &mut fp_map {
            *slot = fp_rf
                .allocate(0)
                .expect("validated: FP RF holds arch state");
        }
        let int_ready = vec![true; usize::from(config.int_rf.entries)];
        let fp_ready = vec![true; usize::from(config.fp_rf.entries)];
        Ok(Pipeline {
            parts: Parts {
                int_rf,
                fp_rf,
                sched: Scheduler::new(config.sched_entries, config.sched_ports),
                dl0: SetAssocCache::new(config.dl0),
                l2: config.l2.map(SetAssocCache::new),
                dtlb: Dtlb::new(config.dtlb_entries, config.dtlb_ways),
                btb: Btb::new(config.btb_entries, config.btb_ways),
                mob: MobAllocator::new(64),
            },
            now: 0,
            seq: 0,
            int_map,
            fp_map,
            int_ready,
            fp_ready,
            in_flight: vec![None; config.sched_entries],
            pending_release: Vec::new(),
            stall_until: 0,
            alu_rr: 0,
            agu_rr: 0,
            slot_rr: 0,
            uops_retired: 0,
            port_issues: [0; 5],
            adder_ops: [0; 5],
            config,
        })
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Uops retired over the pipeline's lifetime (across all runs).
    pub fn uops_retired(&self) -> u64 {
        self.uops_retired
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs a trace to completion (drains in-flight uops afterwards) and
    /// returns this run's statistics. May be called repeatedly; structures
    /// and the clock carry over, mimicking back-to-back trace execution.
    pub fn run<I, H>(&mut self, trace: I, hooks: &mut H) -> RunResult
    where
        I: IntoIterator<Item = Uop>,
        H: Hooks,
    {
        let start_cycles = self.now;
        let start_uops = self.uops_retired;
        let start_issues = self.port_issues;
        let start_adder = self.adder_ops;
        let mut trace = trace.into_iter();
        let mut pending: Option<Uop> = None;
        loop {
            self.now += 1;
            let now = self.now;
            self.retire(now, hooks);
            self.issue(now, hooks);
            // Allocate (unless the front-end is refilling after a
            // mispredict bubble).
            let mut allocated = 0;
            while now >= self.stall_until && allocated < self.config.alloc_width {
                let uop = match pending.take().or_else(|| trace.next()) {
                    Some(u) => u,
                    None => break,
                };
                match self.try_allocate(&uop, now, hooks) {
                    true => {
                        allocated += 1;
                        if uop.class == UopClass::Branch {
                            // Front-end redirect costs: a taken branch that
                            // missed the BTB pays a short bubble; a
                            // mispredict pays the full penalty.
                            let out = self.parts.btb.lookup(uop.pc, now);
                            hooks.btb_accessed(&mut self.parts.btb, &out, now);
                            if uop.mispredict {
                                self.stall_until = now + self.config.mispredict_penalty;
                                break;
                            }
                            if uop.taken && !out.hit {
                                self.stall_until = now + self.config.btb_miss_penalty;
                                break;
                            }
                        }
                    }
                    false => {
                        pending = Some(uop);
                        break;
                    }
                }
            }
            hooks.cycle_end(&mut self.parts, now);
            let drained =
                self.in_flight.iter().all(Option::is_none) && self.pending_release.is_empty();
            if pending.is_none() && drained {
                // Probe the iterator for more work.
                match trace.next() {
                    Some(u) => pending = Some(u),
                    None => break,
                }
            }
        }
        let mut port_issues = [0u64; 5];
        let mut adder_ops = [0u64; 5];
        for i in 0..5 {
            port_issues[i] = self.port_issues[i] - start_issues[i];
            adder_ops[i] = self.adder_ops[i] - start_adder[i];
        }
        RunResult {
            cycles: self.now - start_cycles,
            uops: self.uops_retired - start_uops,
            port_issues,
            adder_ops,
        }
    }

    fn ready_flag(&self, fp: bool, preg: PhysReg) -> bool {
        if fp {
            self.fp_ready[usize::from(preg)]
        } else {
            self.int_ready[usize::from(preg)]
        }
    }

    fn retire<H: Hooks>(&mut self, now: u64, hooks: &mut H) {
        for slot in 0..self.in_flight.len() {
            let Some(fl) = self.in_flight[slot] else {
                continue;
            };
            if !fl.issued || fl.finish_at > now {
                continue;
            }
            // Writeback.
            if let Some((dst, prev)) = fl.dst {
                let class = if fl.fp { RegClass::Fp } else { RegClass::Int };
                let rf = match class {
                    RegClass::Int => &mut self.parts.int_rf,
                    RegClass::Fp => &mut self.parts.fp_rf,
                };
                rf.write(dst, fl.result, now);
                hooks.regfile_written(rf, class, dst, fl.result, now);
                if fl.fp {
                    self.fp_ready[usize::from(dst)] = true;
                } else {
                    self.int_ready[usize::from(dst)] = true;
                }
                if let Some(prev) = prev {
                    self.pending_release
                        .push((now + self.config.release_delay, class, prev));
                }
                // Wake dependents.
                for (other_slot, other) in self.in_flight.iter_mut().enumerate() {
                    let Some(o) = other else { continue };
                    if o.fp != fl.fp {
                        continue;
                    }
                    if !o.ready1 && o.src1 == Some(dst) {
                        o.ready1 = true;
                        self.parts
                            .sched
                            .write_field(other_slot, Field::Ready1, 1, now);
                    }
                    if !o.ready2 && o.src2 == Some(dst) {
                        o.ready2 = true;
                        self.parts
                            .sched
                            .write_field(other_slot, Field::Ready2, 1, now);
                    }
                }
            }
            if let Some(mob) = fl.mob {
                self.parts.mob.release(mob);
            }
            self.parts.sched.release(slot, now);
            hooks.scheduler_released(&mut self.parts.sched, slot, now);
            self.in_flight[slot] = None;
            self.uops_retired += 1;
        }

        // Delayed physical-register releases (commit lag), after the
        // cycle's writebacks so the paper's "port available at release"
        // statistic sees real write-port pressure.
        let due: Vec<(u64, RegClass, PhysReg)> = {
            let (due, rest): (Vec<_>, Vec<_>) = self
                .pending_release
                .drain(..)
                .partition(|&(t, _, _)| t <= now);
            self.pending_release = rest;
            due
        };
        for (_, class, preg) in due {
            let rf = match class {
                RegClass::Int => &mut self.parts.int_rf,
                RegClass::Fp => &mut self.parts.fp_rf,
            };
            rf.release(preg, now);
            hooks.regfile_released(rf, class, preg, now);
        }
    }

    fn issue<H: Hooks>(&mut self, now: u64, hooks: &mut H) {
        for port in 0u8..5 {
            // Oldest ready, unissued uop bound to this port.
            let candidate = self
                .in_flight
                .iter()
                .enumerate()
                .filter_map(|(slot, fl)| fl.as_ref().map(|f| (slot, f)))
                .filter(|(_, f)| !f.issued && f.port == port && f.ready1 && f.ready2)
                .min_by_key(|(_, f)| f.seq)
                .map(|(slot, _)| slot);
            let Some(slot) = candidate else { continue };

            let mut extra = 0;
            if let Some(addr) = self.in_flight[slot].as_ref().and_then(|f| f.mem_addr) {
                let t_out = self.parts.dtlb.translate(addr, now);
                if !t_out.hit {
                    extra += self.config.dtlb_miss_penalty;
                }
                hooks.dtlb_accessed(&mut self.parts.dtlb, &t_out, now);
                let d_out = self.parts.dl0.access(addr, now);
                if !d_out.hit {
                    extra += self.config.dl0_miss_penalty;
                    if let Some(l2) = self.parts.l2.as_mut() {
                        let l2_out = l2.access(addr, now);
                        if !l2_out.hit {
                            extra += self.config.l2_miss_penalty;
                        }
                        hooks.l2_accessed(l2, &l2_out, now);
                    }
                }
                hooks.dl0_accessed(&mut self.parts.dl0, &d_out, now);
            }
            let Some(fl) = self.in_flight[slot].as_mut() else {
                continue;
            };
            fl.issued = true;
            fl.finish_at = now + u64::from(fl.class.latency()) + extra;
            let class = fl.class;
            self.parts.sched.issue(slot, now);
            self.port_issues[usize::from(port)] += 1;
            if class == UopClass::IntAlu || class.is_memory() {
                self.adder_ops[usize::from(port)] += 1;
            }
        }
    }

    fn pick_port(&mut self, uop: &Uop) -> u8 {
        match uop.class {
            UopClass::IntAlu => match self.config.adder_policy {
                AdderPolicy::Uniform => {
                    self.alu_rr = (self.alu_rr + 1) % ALU_PORTS.len() as u8;
                    ALU_PORTS[usize::from(self.alu_rr)]
                }
                AdderPolicy::Prioritized => {
                    // Port 0 first, then 1, rarely 4 — a priority allocator
                    // under moderate pressure lands roughly at 60/30/10.
                    match self.seq % 10 {
                        0..=5 => 0,
                        6..=8 => 1,
                        _ => ALU_PORTS[2],
                    }
                }
            },
            // Two symmetric AGU ports (2 and 3) shared by loads and stores.
            UopClass::Load | UopClass::Store => {
                self.agu_rr = (self.agu_rr + 1) % 2;
                2 + self.agu_rr
            }
            _ => uop.port,
        }
    }

    fn try_allocate<H: Hooks>(&mut self, uop: &Uop, now: u64, hooks: &mut H) -> bool {
        // Preconditions: scheduler slot, destination register, MOB id.
        // Slots are claimed round-robin so freed slots are not immediately
        // reused (their contents keep aging realistically).
        let n = self.in_flight.len();
        let free_slot = (0..n)
            .map(|i| (self.slot_rr + i) % n)
            .find(|&s| self.in_flight[s].is_none() && !self.parts.sched.is_busy(s));
        let Some(slot) = free_slot else { return false };
        let fp = uop.class.is_fp();

        let dst = match uop.dst {
            Some(arch) => {
                let rf = if fp {
                    &mut self.parts.fp_rf
                } else {
                    &mut self.parts.int_rf
                };
                match rf.allocate(now) {
                    Some(preg) => Some((arch, preg)),
                    None => return false,
                }
            }
            None => None,
        };

        let mob = if uop.class.is_memory() {
            match self.parts.mob.allocate() {
                Some(id) => Some(id),
                None => {
                    // Roll back the register allocation.
                    if let Some((_, preg)) = dst {
                        let rf = if fp {
                            &mut self.parts.fp_rf
                        } else {
                            &mut self.parts.int_rf
                        };
                        rf.release(preg, now);
                    }
                    return false;
                }
            }
        } else {
            None
        };

        // Rename sources against the *current* mapping.
        let map_src = |arch: Option<u8>, map_int: &[PhysReg; 16], map_fp: &[PhysReg; 8]| {
            arch.map(|a| {
                if fp {
                    map_fp[usize::from(a) % 8]
                } else {
                    map_int[usize::from(a) % 16]
                }
            })
        };
        let src1 = map_src(uop.src1, &self.int_map, &self.fp_map);
        let src2 = map_src(uop.src2, &self.int_map, &self.fp_map);
        let ready1 = src1.is_none_or(|p| self.ready_flag(fp, p));
        let ready2 = src2.is_none_or(|p| self.ready_flag(fp, p));

        // Update the rename map.
        let dst = dst.map(|(arch, preg)| {
            let prev = if fp {
                let slot = usize::from(arch) % 8;
                let prev = self.fp_map[slot];
                self.fp_map[slot] = preg;
                self.fp_ready[usize::from(preg)] = false;
                prev
            } else {
                let slot = usize::from(arch) % 16;
                let prev = self.int_map[slot];
                self.int_map[slot] = preg;
                self.int_ready[usize::from(preg)] = false;
                prev
            };
            (preg, Some(prev))
        });

        let port = self.pick_port(uop);
        let mut bound = *uop;
        bound.port = port;
        let values = EntryValues::from_uop(
            &bound,
            dst.map_or(0, |(p, _)| (p & 0x7F) as u8),
            src1.map_or(0, |p| (p & 0x7F) as u8),
            src2.map_or(0, |p| (p & 0x7F) as u8),
            mob.unwrap_or(0),
            ready1,
            ready2,
        );
        let usage = DataUsage {
            src1: uop.src1.is_some(),
            src2: uop.src2.is_some(),
            imm: uop.immediate.is_some(),
        };
        self.parts.sched.allocate_at(slot, &values, usage, now);
        hooks.scheduler_allocated(&mut self.parts.sched, slot, &values, now);

        self.slot_rr = (slot + 1) % n;
        self.seq += 1;
        self.in_flight[slot] = Some(InFlight {
            class: uop.class,
            fp,
            dst,
            result: uop.result.bits(),
            src1,
            src2,
            ready1,
            ready2,
            port,
            issued: false,
            finish_at: u64::MAX,
            mem_addr: uop.mem_addr,
            mob,
            seq: self.seq,
        });
        true
    }
}

// The parallel sweep engine (`penelope::par`) constructs pipelines inside
// worker threads and moves their results and parts across the thread
// boundary at merge time. These assertions pin that contract: growing a
// non-`Send` member (an `Rc`, a raw pointer, a thread-bound cache handle)
// into any of these types must fail to compile here, not erupt as a trait
// error three crates up.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Pipeline>();
    assert_send::<Parts>();
    assert_send::<PipelineConfig>();
    assert_send::<RunResult>();
    assert_send::<NoHooks>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::suite::Suite;
    use tracegen::trace::TraceSpec;

    fn run_trace(n: usize) -> (Pipeline, RunResult) {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let trace = TraceSpec::new(Suite::SpecInt2000, 0).generate(n);
        let result = pipe.run(trace, &mut NoHooks);
        (pipe, result)
    }

    #[test]
    fn retires_every_uop() {
        let (_, result) = run_trace(5_000);
        assert_eq!(result.uops, 5_000);
        assert!(result.cycles > 0);
    }

    #[test]
    fn cpi_is_plausible() {
        let (_, result) = run_trace(20_000);
        let cpi = result.cpi();
        assert!(
            (0.3..=3.0).contains(&cpi),
            "CPI {cpi} outside plausible range"
        );
    }

    #[test]
    fn smaller_cache_raises_cpi() {
        let big = PipelineConfig::default();
        let small = PipelineConfig {
            dl0: CacheConfig::dl0(8, 8),
            dtlb_entries: 32,
            ..PipelineConfig::default()
        };
        let trace = || TraceSpec::new(Suite::Server, 0).generate(30_000);
        let mut p_big = Pipeline::new(big);
        let mut p_small = Pipeline::new(small);
        let r_big = p_big.run(trace(), &mut NoHooks);
        let r_small = p_small.run(trace(), &mut NoHooks);
        assert!(
            r_small.cpi() > r_big.cpi(),
            "8KB/32ent ({}) must be slower than 32KB/128ent ({})",
            r_small.cpi(),
            r_big.cpi()
        );
    }

    #[test]
    fn uniform_policy_balances_alu_ports() {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let trace = TraceSpec::new(Suite::Office, 0).generate(30_000);
        let result = pipe.run(trace, &mut NoHooks);
        let u = result.adder_utilization();
        // Port 1 also serves mul (rare in Office), so 0 vs 1 stay close.
        assert!((u[0] - u[1]).abs() < 0.07, "u0={} u1={}", u[0], u[1]);
        // §4.3 band: uniform distribution puts per-adder utilization in the
        // vicinity of 21%.
        assert!(
            (0.08..=0.40).contains(&u[0]),
            "ALU adder utilization {} outside band",
            u[0]
        );
    }

    #[test]
    fn prioritized_policy_skews_alu_ports() {
        let cfg = PipelineConfig {
            adder_policy: AdderPolicy::Prioritized,
            ..PipelineConfig::default()
        };
        let mut pipe = Pipeline::new(cfg);
        let trace = TraceSpec::new(Suite::Office, 0).generate(30_000);
        let result = pipe.run(trace, &mut NoHooks);
        let u = result.adder_utilization();
        assert!(u[0] > u[1] + 0.05, "u0={} u1={}", u[0], u[1]);
    }

    #[test]
    fn structures_report_occupancy_after_run() {
        let (mut pipe, _) = run_trace(20_000);
        let now = pipe.now();
        let sched_occ = pipe.parts.sched.occupancy(now);
        assert!(
            (0.2..=0.95).contains(&sched_occ),
            "scheduler occupancy {sched_occ}"
        );
        let int_free = pipe.parts.int_rf.free_fraction(now);
        assert!((0.2..=0.9).contains(&int_free), "int free {int_free}");
    }

    #[test]
    fn multiple_runs_accumulate() {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let r1 = pipe.run(
            TraceSpec::new(Suite::Office, 0).generate(1_000),
            &mut NoHooks,
        );
        let r2 = pipe.run(
            TraceSpec::new(Suite::Office, 1).generate(1_000),
            &mut NoHooks,
        );
        assert_eq!(r1.uops, 1_000);
        assert_eq!(r2.uops, 1_000);
        let mut merged = r1.clone();
        merged.merge(&r2);
        assert_eq!(merged.uops, 2_000);
        assert_eq!(merged.cycles, r1.cycles + r2.cycles);
    }

    #[test]
    fn hooks_receive_events() {
        #[derive(Default)]
        struct Counter {
            releases: u64,
            sched_releases: u64,
            dl0: u64,
            cycles: u64,
        }
        impl Hooks for Counter {
            fn regfile_released(
                &mut self,
                _rf: &mut RegisterFile,
                _class: RegClass,
                _preg: PhysReg,
                _now: u64,
            ) {
                self.releases += 1;
            }
            fn scheduler_released(&mut self, _s: &mut Scheduler, _slot: SlotId, _now: u64) {
                self.sched_releases += 1;
            }
            fn dl0_accessed(&mut self, _c: &mut SetAssocCache, _o: &AccessOutcome, _now: u64) {
                self.dl0 += 1;
            }
            fn cycle_end(&mut self, _p: &mut Parts, _now: u64) {
                self.cycles += 1;
            }
        }
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let mut hooks = Counter::default();
        let result = pipe.run(
            TraceSpec::new(Suite::Multimedia, 0).generate(5_000),
            &mut hooks,
        );
        assert_eq!(hooks.sched_releases, 5_000);
        assert!(hooks.releases > 0);
        assert!(hooks.dl0 > 0);
        assert_eq!(hooks.cycles, result.cycles);
    }

    #[test]
    fn mob_ids_drain() {
        let (pipe, _) = run_trace(10_000);
        assert_eq!(pipe.parts.mob.in_use_count(), 0, "all MOB ids released");
    }
}
