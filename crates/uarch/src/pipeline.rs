//! Trace-driven out-of-order pipeline model.
//!
//! A compact Core™-like model: per cycle it retires finished uops, issues
//! ready uops over five ports, and allocates up to `alloc_width` new uops
//! from the trace (rename + scheduler capture + MOB id). It is *statistical*
//! rather than functionally exact — results come from the trace, not from
//! executing operations — but the quantities the paper's evaluation rests on
//! are modeled faithfully:
//!
//! - CPI and its sensitivity to DL0/DTLB misses (Table 3);
//! - scheduler occupancy (~63%) and data-field occupancy (§4.5);
//! - register-file free time (54% INT / 69% FP) and write-port
//!   availability at release (92% / 86%, §4.4);
//! - per-adder utilization (11–30% depending on the allocation policy,
//!   §4.3), with an adder on each integer-ALU and address-generation port.
//!
//! NBTI mechanisms attach through the [`Hooks`] trait, which receives
//! events (releases, cache fills, cycle boundaries) with mutable access to
//! the structures — exactly the points where Penelope's balancing writes
//! happen.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::btb::Btb;
use crate::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use crate::error::{validate_cache, validate_regfile, PipelineError};
use crate::mob::MobAllocator;
use crate::regfile::{PhysReg, RegFileConfig, RegisterFile};
use crate::scheduler::{DataUsage, EntryValues, Field, Scheduler, SlotId};
use crate::tlb::Dtlb;
use tracegen::soa::ChunkedUops;
use tracegen::uop::{Uop, UopClass};

/// Which register file an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// The integer register file.
    Int,
    /// The FP register file.
    Fp,
}

/// How integer-ALU uops are spread over the three ALU ports (0, 1 and 4).
///
/// §4.3: "if additions are allocated to adders with priorities, the
/// utilization of the adders ranges between 11% and 30%, but if additions
/// are distributed uniformly across adders, the utilization of adders
/// is 21%".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdderPolicy {
    /// Round-robin over the ALU ports (uniform utilization).
    #[default]
    Uniform,
    /// Lowest-numbered ALU port first (skewed utilization).
    Prioritized,
}

/// Pipeline parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Uops allocated per cycle.
    pub alloc_width: u8,
    /// Scheduler entries.
    pub sched_entries: usize,
    /// Scheduler allocation ports.
    pub sched_ports: u8,
    /// Integer register file.
    pub int_rf: RegFileConfig,
    /// FP register file.
    pub fp_rf: RegFileConfig,
    /// First-level data cache geometry.
    pub dl0: CacheConfig,
    /// Optional unified second-level cache. When present, a DL0 miss that
    /// hits the L2 pays `dl0_miss_penalty`, and an L2 miss pays
    /// `l2_miss_penalty` on top.
    pub l2: Option<CacheConfig>,
    /// Extra cycles when a DL0 miss also misses the L2.
    pub l2_miss_penalty: u64,
    /// DTLB entries.
    pub dtlb_entries: u32,
    /// DTLB associativity.
    pub dtlb_ways: u16,
    /// BTB entries.
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_ways: u16,
    /// Front-end bubble when a taken branch misses the BTB.
    pub btb_miss_penalty: u64,
    /// Extra cycles on a DL0 miss.
    pub dl0_miss_penalty: u64,
    /// Extra cycles on a DTLB miss.
    pub dtlb_miss_penalty: u64,
    /// Cycles between writeback and physical-register release (commit lag).
    pub release_delay: u64,
    /// Front-end bubble after a mispredicted branch allocates.
    pub mispredict_penalty: u64,
    /// ALU port selection policy.
    pub adder_policy: AdderPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            alloc_width: 4,
            sched_entries: Scheduler::PAPER_ENTRIES,
            sched_ports: 4,
            int_rf: RegFileConfig::integer(),
            fp_rf: RegFileConfig::floating_point(),
            dl0: CacheConfig::dl0(32, 8),
            l2: None,
            l2_miss_penalty: 40,
            dtlb_entries: 128,
            dtlb_ways: 8,
            btb_entries: 512,
            btb_ways: 4,
            btb_miss_penalty: 2,
            dl0_miss_penalty: 12,
            dtlb_miss_penalty: 30,
            release_delay: 16,
            mispredict_penalty: 20,
            adder_policy: AdderPolicy::Uniform,
        }
    }
}

/// The microarchitectural structures, bundled so hooks can receive mutable
/// access to all of them at cycle boundaries.
#[derive(Debug)]
pub struct Parts {
    /// Integer physical register file.
    pub int_rf: RegisterFile,
    /// FP physical register file.
    pub fp_rf: RegisterFile,
    /// The scheduler.
    pub sched: Scheduler,
    /// First-level data cache.
    pub dl0: SetAssocCache,
    /// Second-level cache, if configured.
    pub l2: Option<SetAssocCache>,
    /// Data TLB.
    pub dtlb: Dtlb,
    /// Branch target buffer.
    pub btb: Btb,
    /// MOB id allocator.
    pub mob: MobAllocator,
}

/// Observer/actuator interface for NBTI mechanisms.
///
/// All methods have empty defaults; implement only what the mechanism
/// needs. Methods receive mutable structure references so balancing writes
/// can reuse idle ports in the same cycle as the triggering event.
pub trait Hooks {
    /// A physical register was released (its content remains).
    fn regfile_released(
        &mut self,
        _rf: &mut RegisterFile,
        _class: RegClass,
        _preg: PhysReg,
        _now: u64,
    ) {
    }

    /// A value was architecturally written to a register (sampling point
    /// for RINV).
    fn regfile_written(
        &mut self,
        _rf: &mut RegisterFile,
        _class: RegClass,
        _preg: PhysReg,
        _value: u128,
        _now: u64,
    ) {
    }

    /// A scheduler slot was released (its contents remain).
    fn scheduler_released(&mut self, _sched: &mut Scheduler, _slot: SlotId, _now: u64) {}

    /// A scheduler slot was allocated with the given captured values.
    fn scheduler_allocated(
        &mut self,
        _sched: &mut Scheduler,
        _slot: SlotId,
        _values: &EntryValues,
        _now: u64,
    ) {
    }

    /// The DL0 completed an access (hit or fill).
    fn dl0_accessed(&mut self, _dl0: &mut SetAssocCache, _outcome: &AccessOutcome, _now: u64) {}

    /// The L2 completed an access (only on DL0 misses, when configured).
    fn l2_accessed(&mut self, _l2: &mut SetAssocCache, _outcome: &AccessOutcome, _now: u64) {}

    /// The DTLB completed an access (hit or fill).
    fn dtlb_accessed(&mut self, _dtlb: &mut Dtlb, _outcome: &AccessOutcome, _now: u64) {}

    /// The BTB completed a lookup (hit or train).
    fn btb_accessed(&mut self, _btb: &mut Btb, _outcome: &AccessOutcome, _now: u64) {}

    /// End of cycle; periodic maintenance goes here.
    fn cycle_end(&mut self, _parts: &mut Parts, _now: u64) {}

    /// A span of idle cycles `start..=end` (inclusive) that the event-driven
    /// core skipped over in one step: the pipeline proves no retire, issue,
    /// allocation, or register release can happen in the span, so the only
    /// thing that would have run is `cycle_end` once per cycle.
    ///
    /// The default implementation replays exactly that, so every existing
    /// hook observes the same call sequence as under the cycle-accurate
    /// loop. Span-aware hooks may override this with a closed-form update,
    /// but overrides must stay observably equivalent to the replay —
    /// including any RNG draw sequence — or run-to-run byte-identity breaks.
    fn on_idle_span(&mut self, parts: &mut Parts, start: u64, end: u64) {
        for t in start..=end {
            self.cycle_end(parts, t);
        }
    }
}

/// A no-op hook set: the unmodified baseline processor.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {
    fn on_idle_span(&mut self, _parts: &mut Parts, _start: u64, _end: u64) {
        // `cycle_end` is a no-op, so the replay loop would be too.
    }
}

/// Forwarding impl so hook chains can be composed by mutable borrow: a
/// wrapper (telemetry, fault injection) can hold `&mut H` instead of
/// taking ownership of the chain it instruments.
impl<H: Hooks + ?Sized> Hooks for &mut H {
    fn regfile_released(
        &mut self,
        rf: &mut RegisterFile,
        class: RegClass,
        preg: PhysReg,
        now: u64,
    ) {
        (**self).regfile_released(rf, class, preg, now);
    }

    fn regfile_written(
        &mut self,
        rf: &mut RegisterFile,
        class: RegClass,
        preg: PhysReg,
        value: u128,
        now: u64,
    ) {
        (**self).regfile_written(rf, class, preg, value, now);
    }

    fn scheduler_released(&mut self, sched: &mut Scheduler, slot: SlotId, now: u64) {
        (**self).scheduler_released(sched, slot, now);
    }

    fn scheduler_allocated(
        &mut self,
        sched: &mut Scheduler,
        slot: SlotId,
        values: &EntryValues,
        now: u64,
    ) {
        (**self).scheduler_allocated(sched, slot, values, now);
    }

    fn dl0_accessed(&mut self, dl0: &mut SetAssocCache, outcome: &AccessOutcome, now: u64) {
        (**self).dl0_accessed(dl0, outcome, now);
    }

    fn l2_accessed(&mut self, l2: &mut SetAssocCache, outcome: &AccessOutcome, now: u64) {
        (**self).l2_accessed(l2, outcome, now);
    }

    fn dtlb_accessed(&mut self, dtlb: &mut Dtlb, outcome: &AccessOutcome, now: u64) {
        (**self).dtlb_accessed(dtlb, outcome, now);
    }

    fn btb_accessed(&mut self, btb: &mut Btb, outcome: &AccessOutcome, now: u64) {
        (**self).btb_accessed(btb, outcome, now);
    }

    fn cycle_end(&mut self, parts: &mut Parts, now: u64) {
        (**self).cycle_end(parts, now);
    }

    fn on_idle_span(&mut self, parts: &mut Parts, start: u64, end: u64) {
        (**self).on_idle_span(parts, start, end);
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    class: UopClass,
    fp: bool,
    /// (new mapping, previous mapping of the same arch reg).
    dst: Option<(PhysReg, Option<PhysReg>)>,
    result: u128,
    src1: Option<PhysReg>,
    src2: Option<PhysReg>,
    ready1: bool,
    ready2: bool,
    port: u8,
    issued: bool,
    finish_at: u64,
    mem_addr: Option<u64>,
    mob: Option<u8>,
    seq: u64,
}

/// Aggregate results of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Uops retired.
    pub uops: u64,
    /// Per-port issue counts (ports 0..4).
    pub port_issues: [u64; 5],
    /// Per-port *adder operations* (IntAlu on the ALU ports, address
    /// generations on the memory ports): the basis of the §4.3 utilization
    /// figures.
    pub adder_ops: [u64; 5],
}

impl RunResult {
    /// Cycles per uop.
    pub fn cpi(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.uops as f64
        }
    }

    /// Utilization of the adder on each port (integer adders on ports 0 and
    /// 1; AGU adders on ports 2 and 3; port 4 has no adder).
    pub fn adder_utilization(&self) -> [f64; 5] {
        let mut u = [0.0; 5];
        if self.cycles > 0 {
            for (i, &n) in self.adder_ops.iter().enumerate() {
                u[i] = n as f64 / self.cycles as f64;
            }
        }
        u
    }

    /// Mean utilization over the four adder-bearing ports.
    pub fn mean_adder_utilization(&self) -> f64 {
        let u = self.adder_utilization();
        (u[0] + u[1] + u[2] + u[3]) / 4.0
    }

    /// Worst per-adder utilization (the §4.3 "allocated with priorities"
    /// case is judged by its most used adder).
    pub fn max_adder_utilization(&self) -> f64 {
        self.adder_utilization().into_iter().fold(0.0, f64::max)
    }

    /// Merges another run into this one (multi-trace campaigns).
    pub fn merge(&mut self, other: &RunResult) {
        self.cycles += other.cycles;
        self.uops += other.uops;
        for (a, b) in self.port_issues.iter_mut().zip(&other.port_issues) {
            *a += b;
        }
        for (a, b) in self.adder_ops.iter_mut().zip(&other.adder_ops) {
            *a += b;
        }
    }
}

/// The pipeline: owns the structures and the clock; runs traces.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    /// The structures, exposed for statistics and mechanisms.
    pub parts: Parts,
    now: u64,
    seq: u64,
    int_map: [PhysReg; 16],
    fp_map: [PhysReg; 8],
    int_ready: Vec<bool>,
    fp_ready: Vec<bool>,
    in_flight: Vec<Option<InFlight>>,
    /// Occupied `in_flight` slots (allocations minus retires): the drain
    /// check without the window scan.
    in_flight_count: usize,
    /// Delayed physical-register releases, sorted by due time: every push
    /// uses `now + release_delay` with a fixed delay and a monotonic clock,
    /// so the queue is ordered by construction and the front is the next
    /// release event.
    pending_release: VecDeque<(u64, RegClass, PhysReg)>,
    /// Issued in-flight uops keyed by completion time: the retire stage
    /// pops the due set instead of rescanning the window, and the front is
    /// the next retire event for skip-ahead. Entries are unique (a uop
    /// issues once) and `finish_at` never changes after issue.
    retire_q: BinaryHeap<Reverse<(u64, SlotId)>>,
    /// Scratch for the due set, sorted to slot order (the order the window
    /// scan would retire in). Reused to stay allocation-free.
    retire_buf: Vec<SlotId>,
    /// Ready-but-unissued uops per port, keyed by age (`seq`): the issue
    /// stage pops the oldest instead of rescanning the window. A uop is
    /// pushed exactly once — at allocation if both sources are ready, or at
    /// the wakeup that completes its readiness — and popped when issued.
    ready_q: [BinaryHeap<Reverse<(u64, SlotId)>>; 5],
    /// Per-physical-register wakeup lists (integer / FP): slots whose
    /// sources were not ready at allocation, visited once when the producer
    /// writes back. Replaces the O(window) wake scan.
    waiters_int: Vec<Vec<SlotId>>,
    waiters_fp: Vec<Vec<SlotId>>,
    stall_until: u64,
    alu_rr: u8,
    agu_rr: u8,
    slot_rr: usize,
    uops_retired: u64,
    port_issues: [u64; 5],
    adder_ops: [u64; 5],
}

/// The three integer-ALU ports (each with an adder, Core-like); ports 2/3
/// carry the AGU adders; port 4 doubles as the branch port.
const ALU_PORTS: [u8; 3] = [0, 1, 4];

impl Pipeline {
    /// Builds a pipeline; the architectural registers are pre-mapped and
    /// initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration; use [`Pipeline::try_new`] for
    /// a panic-free, typed-error construction path.
    pub fn new(config: PipelineConfig) -> Self {
        match Pipeline::try_new(config) {
            Ok(pipe) => pipe,
            Err(err) => panic!("invalid pipeline configuration: {err}"),
        }
    }

    /// Checks a configuration without building anything: every structure
    /// geometry must be instantiable and the pipeline must be able to make
    /// forward progress (nonzero allocation width, register files larger
    /// than the pre-mapped architectural state).
    pub fn validate(config: &PipelineConfig) -> Result<(), PipelineError> {
        if config.alloc_width == 0 {
            return Err(PipelineError::ZeroAllocWidth);
        }
        if config.sched_entries == 0 {
            return Err(PipelineError::NoSchedulerEntries);
        }
        if config.sched_ports == 0 {
            return Err(PipelineError::NoSchedulerPorts);
        }
        validate_regfile("integer", &config.int_rf, 16)?;
        validate_regfile("FP", &config.fp_rf, 8)?;
        validate_cache("DL0", &config.dl0)?;
        if let Some(l2) = &config.l2 {
            validate_cache("L2", l2)?;
        }
        // The DTLB and BTB are built from entry counts; check the cache
        // geometries they expand to.
        validate_cache(
            "DTLB",
            &CacheConfig::dtlb(config.dtlb_entries, config.dtlb_ways),
        )?;
        validate_cache(
            "BTB",
            &CacheConfig {
                size_bytes: u64::from(config.btb_entries) * 4,
                ways: config.btb_ways,
                line_bytes: 4,
            },
        )?;
        Ok(())
    }

    /// Builds a pipeline, rejecting degenerate configurations with a typed
    /// error instead of panicking (or hanging) mid-run.
    #[allow(clippy::expect_used)] // arch-state allocations validated below
    pub fn try_new(config: PipelineConfig) -> Result<Self, PipelineError> {
        Pipeline::validate(&config)?;
        let mut int_rf = RegisterFile::new(config.int_rf);
        let mut fp_rf = RegisterFile::new(config.fp_rf);
        let mut int_map = [0; 16];
        let mut fp_map = [0; 8];
        // validate() guarantees both files exceed the architectural state,
        // so these allocations cannot fail.
        for slot in &mut int_map {
            *slot = int_rf
                .allocate(0)
                .expect("validated: integer RF holds arch state");
        }
        for slot in &mut fp_map {
            *slot = fp_rf
                .allocate(0)
                .expect("validated: FP RF holds arch state");
        }
        let int_ready = vec![true; usize::from(config.int_rf.entries)];
        let fp_ready = vec![true; usize::from(config.fp_rf.entries)];
        Ok(Pipeline {
            parts: Parts {
                int_rf,
                fp_rf,
                sched: Scheduler::new(config.sched_entries, config.sched_ports),
                dl0: SetAssocCache::new(config.dl0),
                l2: config.l2.map(SetAssocCache::new),
                dtlb: Dtlb::new(config.dtlb_entries, config.dtlb_ways),
                btb: Btb::new(config.btb_entries, config.btb_ways),
                mob: MobAllocator::new(64),
            },
            now: 0,
            seq: 0,
            int_map,
            fp_map,
            int_ready,
            fp_ready,
            in_flight: vec![None; config.sched_entries],
            in_flight_count: 0,
            pending_release: VecDeque::new(),
            retire_q: BinaryHeap::new(),
            retire_buf: Vec::new(),
            ready_q: std::array::from_fn(|_| BinaryHeap::new()),
            waiters_int: vec![Vec::new(); usize::from(config.int_rf.entries)],
            waiters_fp: vec![Vec::new(); usize::from(config.fp_rf.entries)],
            stall_until: 0,
            alu_rr: 0,
            agu_rr: 0,
            slot_rr: 0,
            uops_retired: 0,
            port_issues: [0; 5],
            adder_ops: [0; 5],
            config,
        })
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Uops retired over the pipeline's lifetime (across all runs).
    pub fn uops_retired(&self) -> u64 {
        self.uops_retired
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs a trace to completion (drains in-flight uops afterwards) and
    /// returns this run's statistics. May be called repeatedly; structures
    /// and the clock carry over, mimicking back-to-back trace execution.
    ///
    /// This is the event-driven core: cycles in which nothing can happen —
    /// front-end bubbles with the window waiting on long misses, structural
    /// stalls, drain tails — are skipped in one step, with hooks notified
    /// through [`Hooks::on_idle_span`]. Observable behavior (results, hook
    /// call sequence, residency accounting) is identical to
    /// [`Pipeline::run_cycle_accurate`].
    pub fn run<I, H>(&mut self, trace: I, hooks: &mut H) -> RunResult
    where
        I: IntoIterator<Item = Uop>,
        H: Hooks,
    {
        self.run_inner(trace, hooks, true)
    }

    /// Runs a chunked (structure-of-arrays) uop stream to completion: the
    /// generator side runs a block of uops at a time into parallel arrays
    /// (see [`tracegen::soa`]), and allocation decodes them sequentially.
    /// Yields exactly the results of [`Pipeline::run`] over the same uops —
    /// batching changes generation timing, never content or order.
    pub fn run_chunked<I, H>(&mut self, chunks: ChunkedUops<I>, hooks: &mut H) -> RunResult
    where
        I: Iterator<Item = Uop>,
        H: Hooks,
    {
        self.run_inner(chunks.into_uops(), hooks, true)
    }

    /// The cycle-by-cycle reference loop: identical to [`Pipeline::run`]
    /// but ticking every simulated cycle. Kept as the differential oracle
    /// for the event-driven core (and as the baseline leg of the
    /// `pipeline_run` Criterion bench).
    pub fn run_cycle_accurate<I, H>(&mut self, trace: I, hooks: &mut H) -> RunResult
    where
        I: IntoIterator<Item = Uop>,
        H: Hooks,
    {
        self.run_inner(trace, hooks, false)
    }

    fn run_inner<I, H>(&mut self, trace: I, hooks: &mut H, skip_ahead: bool) -> RunResult
    where
        I: IntoIterator<Item = Uop>,
        H: Hooks,
    {
        let start_cycles = self.now;
        let start_uops = self.uops_retired;
        let start_issues = self.port_issues;
        let start_adder = self.adder_ops;
        let mut trace = trace.into_iter().fuse();
        let mut pending: Option<Uop> = None;
        let mut trace_done = false;
        loop {
            self.now += 1;
            let now = self.now;
            self.retire(now, hooks);
            self.issue(now, hooks);
            // Allocate (unless the front-end is refilling after a
            // mispredict bubble). `blocked` records a structural stall: the
            // head uop found no slot/register/MOB id, which cannot resolve
            // before the next retire or release event.
            let mut allocated = 0;
            let mut blocked = false;
            while now >= self.stall_until && allocated < self.config.alloc_width {
                let uop = match pending.take() {
                    Some(u) => u,
                    None => match trace.next() {
                        Some(u) => u,
                        None => {
                            trace_done = true;
                            break;
                        }
                    },
                };
                match self.try_allocate(&uop, now, hooks) {
                    true => {
                        allocated += 1;
                        if uop.class == UopClass::Branch {
                            // Front-end redirect costs: a taken branch that
                            // missed the BTB pays a short bubble; a
                            // mispredict pays the full penalty.
                            let out = self.parts.btb.lookup(uop.pc, now);
                            hooks.btb_accessed(&mut self.parts.btb, &out, now);
                            if uop.mispredict {
                                self.stall_until = now + self.config.mispredict_penalty;
                                break;
                            }
                            if uop.taken && !out.hit {
                                self.stall_until = now + self.config.btb_miss_penalty;
                                break;
                            }
                        }
                    }
                    false => {
                        pending = Some(uop);
                        blocked = true;
                        break;
                    }
                }
            }
            hooks.cycle_end(&mut self.parts, now);
            let drained = self.in_flight_count == 0 && self.pending_release.is_empty();
            if pending.is_none() && drained {
                // Probe the iterator for more work.
                match trace.next() {
                    Some(u) => pending = Some(u),
                    None => break,
                }
            }
            if !skip_ahead {
                continue;
            }
            // Skip ahead: the next interesting cycle is the earliest of the
            // next retire, the next delayed register release, the next issue
            // (something is ready now), and the next allocation attempt
            // (immediately, unless the front end is bubbled or structurally
            // blocked). Anything strictly between is an idle span in which
            // no event fires and no state changes except hook maintenance.
            let mut next = self.retire_q.peek().map_or(u64::MAX, |&Reverse((t, _))| t);
            if let Some(&(t, _, _)) = self.pending_release.front() {
                next = next.min(t);
            }
            if self.ready_q.iter().any(|q| !q.is_empty()) {
                next = next.min(now + 1);
            }
            if !blocked && (pending.is_some() || !trace_done) {
                next = next.min((now + 1).max(self.stall_until));
            }
            if next > now + 1 && next != u64::MAX {
                hooks.on_idle_span(&mut self.parts, now + 1, next - 1);
                self.now = next - 1;
            }
        }
        let mut port_issues = [0u64; 5];
        let mut adder_ops = [0u64; 5];
        for i in 0..5 {
            port_issues[i] = self.port_issues[i] - start_issues[i];
            adder_ops[i] = self.adder_ops[i] - start_adder[i];
        }
        RunResult {
            cycles: self.now - start_cycles,
            uops: self.uops_retired - start_uops,
            port_issues,
            adder_ops,
        }
    }

    fn ready_flag(&self, fp: bool, preg: PhysReg) -> bool {
        if fp {
            self.fp_ready[usize::from(preg)]
        } else {
            self.int_ready[usize::from(preg)]
        }
    }

    fn retire<H: Hooks>(&mut self, now: u64, hooks: &mut H) {
        // Pop the due set off the completion heap and replay it in slot
        // order — exactly the set, and the order, the full window scan
        // retired in. Heap entries are unique and `finish_at` is immutable
        // after issue, so nothing here can be stale.
        if self
            .retire_q
            .peek()
            .is_some_and(|&Reverse((t, _))| t <= now)
        {
            self.retire_buf.clear();
            while let Some(&Reverse((t, slot))) = self.retire_q.peek() {
                if t > now {
                    break;
                }
                self.retire_q.pop();
                self.retire_buf.push(slot);
            }
            self.retire_buf.sort_unstable();
            for i in 0..self.retire_buf.len() {
                let slot = self.retire_buf[i];
                let Some(fl) = self.in_flight[slot] else {
                    continue;
                };
                // Writeback.
                if let Some((dst, prev)) = fl.dst {
                    let class = if fl.fp { RegClass::Fp } else { RegClass::Int };
                    let rf = match class {
                        RegClass::Int => &mut self.parts.int_rf,
                        RegClass::Fp => &mut self.parts.fp_rf,
                    };
                    rf.write(dst, fl.result, now);
                    hooks.regfile_written(rf, class, dst, fl.result, now);
                    if fl.fp {
                        self.fp_ready[usize::from(dst)] = true;
                    } else {
                        self.int_ready[usize::from(dst)] = true;
                    }
                    if let Some(prev) = prev {
                        self.pending_release.push_back((
                            now + self.config.release_delay,
                            class,
                            prev,
                        ));
                    }
                    // Wake dependents: exactly the slots that registered on
                    // this physical register at allocation. Visit order may
                    // differ from the old window scan, but every update is a
                    // commutative flag/residency write and the ready queues
                    // key on unique (seq, slot), so observable behavior is
                    // unchanged.
                    let waiters = if fl.fp {
                        &mut self.waiters_fp
                    } else {
                        &mut self.waiters_int
                    };
                    let mut list = std::mem::take(&mut waiters[usize::from(dst)]);
                    for &other_slot in &list {
                        let Some(o) = self.in_flight[other_slot].as_mut() else {
                            continue;
                        };
                        let was_ready = o.ready1 && o.ready2;
                        if !o.ready1 && o.src1 == Some(dst) {
                            o.ready1 = true;
                            self.parts
                                .sched
                                .write_field(other_slot, Field::Ready1, 1, now);
                        }
                        if !o.ready2 && o.src2 == Some(dst) {
                            o.ready2 = true;
                            self.parts
                                .sched
                                .write_field(other_slot, Field::Ready2, 1, now);
                        }
                        if !was_ready && o.ready1 && o.ready2 && !o.issued {
                            self.ready_q[usize::from(o.port)].push(Reverse((o.seq, other_slot)));
                        }
                    }
                    list.clear();
                    let waiters = if fl.fp {
                        &mut self.waiters_fp
                    } else {
                        &mut self.waiters_int
                    };
                    waiters[usize::from(dst)] = list;
                }
                if let Some(mob) = fl.mob {
                    self.parts.mob.release(mob);
                }
                self.parts.sched.release(slot, now);
                hooks.scheduler_released(&mut self.parts.sched, slot, now);
                self.in_flight[slot] = None;
                self.in_flight_count -= 1;
                self.uops_retired += 1;
            }
        }

        // Delayed physical-register releases (commit lag), after the
        // cycle's writebacks so the paper's "port available at release"
        // statistic sees real write-port pressure. The queue is sorted by
        // due time, so the due set is exactly the front run.
        while let Some(&(t, class, preg)) = self.pending_release.front() {
            if t > now {
                break;
            }
            self.pending_release.pop_front();
            let rf = match class {
                RegClass::Int => &mut self.parts.int_rf,
                RegClass::Fp => &mut self.parts.fp_rf,
            };
            rf.release(preg, now);
            hooks.regfile_released(rf, class, preg, now);
        }
    }

    fn issue<H: Hooks>(&mut self, now: u64, hooks: &mut H) {
        for port in 0u8..5 {
            // Oldest ready, unissued uop bound to this port: the front of
            // the port's ready queue (entries are pushed exactly when a uop
            // becomes ready and popped here, so the queue never holds a
            // stale slot).
            let Some(Reverse((_, slot))) = self.ready_q[usize::from(port)].pop() else {
                continue;
            };

            let mut extra = 0;
            if let Some(addr) = self.in_flight[slot].as_ref().and_then(|f| f.mem_addr) {
                let t_out = self.parts.dtlb.translate(addr, now);
                if !t_out.hit {
                    extra += self.config.dtlb_miss_penalty;
                }
                hooks.dtlb_accessed(&mut self.parts.dtlb, &t_out, now);
                let d_out = self.parts.dl0.access(addr, now);
                if !d_out.hit {
                    extra += self.config.dl0_miss_penalty;
                    if let Some(l2) = self.parts.l2.as_mut() {
                        let l2_out = l2.access(addr, now);
                        if !l2_out.hit {
                            extra += self.config.l2_miss_penalty;
                        }
                        hooks.l2_accessed(l2, &l2_out, now);
                    }
                }
                hooks.dl0_accessed(&mut self.parts.dl0, &d_out, now);
            }
            let Some(fl) = self.in_flight[slot].as_mut() else {
                continue;
            };
            fl.issued = true;
            fl.finish_at = now + u64::from(fl.class.latency()) + extra;
            let finish_at = fl.finish_at;
            let class = fl.class;
            self.retire_q.push(Reverse((finish_at, slot)));
            self.parts.sched.issue(slot, now);
            self.port_issues[usize::from(port)] += 1;
            if class == UopClass::IntAlu || class.is_memory() {
                self.adder_ops[usize::from(port)] += 1;
            }
        }
    }

    fn pick_port(&mut self, uop: &Uop) -> u8 {
        match uop.class {
            UopClass::IntAlu => match self.config.adder_policy {
                AdderPolicy::Uniform => {
                    self.alu_rr = (self.alu_rr + 1) % ALU_PORTS.len() as u8;
                    ALU_PORTS[usize::from(self.alu_rr)]
                }
                AdderPolicy::Prioritized => {
                    // Port 0 first, then 1, rarely 4 — a priority allocator
                    // under moderate pressure lands roughly at 60/30/10.
                    match self.seq % 10 {
                        0..=5 => 0,
                        6..=8 => 1,
                        _ => ALU_PORTS[2],
                    }
                }
            },
            // Two symmetric AGU ports (2 and 3) shared by loads and stores.
            UopClass::Load | UopClass::Store => {
                self.agu_rr = (self.agu_rr + 1) % 2;
                2 + self.agu_rr
            }
            _ => uop.port,
        }
    }

    fn try_allocate<H: Hooks>(&mut self, uop: &Uop, now: u64, hooks: &mut H) -> bool {
        // Preconditions: scheduler slot, destination register, MOB id.
        // Slots are claimed round-robin so freed slots are not immediately
        // reused (their contents keep aging realistically).
        let n = self.in_flight.len();
        let free_slot = (0..n)
            .map(|i| (self.slot_rr + i) % n)
            .find(|&s| self.in_flight[s].is_none() && !self.parts.sched.is_busy(s));
        let Some(slot) = free_slot else { return false };
        let fp = uop.class.is_fp();

        let dst = match uop.dst {
            Some(arch) => {
                let rf = if fp {
                    &mut self.parts.fp_rf
                } else {
                    &mut self.parts.int_rf
                };
                match rf.allocate(now) {
                    Some(preg) => Some((arch, preg)),
                    None => return false,
                }
            }
            None => None,
        };

        let mob = if uop.class.is_memory() {
            match self.parts.mob.allocate() {
                Some(id) => Some(id),
                None => {
                    // Roll back the register allocation.
                    if let Some((_, preg)) = dst {
                        let rf = if fp {
                            &mut self.parts.fp_rf
                        } else {
                            &mut self.parts.int_rf
                        };
                        rf.release(preg, now);
                    }
                    return false;
                }
            }
        } else {
            None
        };

        // Rename sources against the *current* mapping.
        let map_src = |arch: Option<u8>, map_int: &[PhysReg; 16], map_fp: &[PhysReg; 8]| {
            arch.map(|a| {
                if fp {
                    map_fp[usize::from(a) % 8]
                } else {
                    map_int[usize::from(a) % 16]
                }
            })
        };
        let src1 = map_src(uop.src1, &self.int_map, &self.fp_map);
        let src2 = map_src(uop.src2, &self.int_map, &self.fp_map);
        let ready1 = src1.is_none_or(|p| self.ready_flag(fp, p));
        let ready2 = src2.is_none_or(|p| self.ready_flag(fp, p));
        // Register on the producers' wakeup lists. A duplicate entry (both
        // sources on one register) is harmless: the second visit finds the
        // flags already set.
        {
            let waiters = if fp {
                &mut self.waiters_fp
            } else {
                &mut self.waiters_int
            };
            if let (false, Some(p)) = (ready1, src1) {
                waiters[usize::from(p)].push(slot);
            }
            if let (false, Some(p)) = (ready2, src2) {
                waiters[usize::from(p)].push(slot);
            }
        }

        // Update the rename map.
        let dst = dst.map(|(arch, preg)| {
            let prev = if fp {
                let slot = usize::from(arch) % 8;
                let prev = self.fp_map[slot];
                self.fp_map[slot] = preg;
                self.fp_ready[usize::from(preg)] = false;
                prev
            } else {
                let slot = usize::from(arch) % 16;
                let prev = self.int_map[slot];
                self.int_map[slot] = preg;
                self.int_ready[usize::from(preg)] = false;
                prev
            };
            (preg, Some(prev))
        });

        let port = self.pick_port(uop);
        let mut bound = *uop;
        bound.port = port;
        let values = EntryValues::from_uop(
            &bound,
            dst.map_or(0, |(p, _)| (p & 0x7F) as u8),
            src1.map_or(0, |p| (p & 0x7F) as u8),
            src2.map_or(0, |p| (p & 0x7F) as u8),
            mob.unwrap_or(0),
            ready1,
            ready2,
        );
        let usage = DataUsage {
            src1: uop.src1.is_some(),
            src2: uop.src2.is_some(),
            imm: uop.immediate.is_some(),
        };
        self.parts.sched.allocate_at(slot, &values, usage, now);
        hooks.scheduler_allocated(&mut self.parts.sched, slot, &values, now);

        self.slot_rr = (slot + 1) % n;
        self.seq += 1;
        if ready1 && ready2 {
            self.ready_q[usize::from(port)].push(Reverse((self.seq, slot)));
        }
        self.in_flight_count += 1;
        self.in_flight[slot] = Some(InFlight {
            class: uop.class,
            fp,
            dst,
            result: uop.result.bits(),
            src1,
            src2,
            ready1,
            ready2,
            port,
            issued: false,
            finish_at: u64::MAX,
            mem_addr: uop.mem_addr,
            mob,
            seq: self.seq,
        });
        true
    }
}

// The parallel sweep engine (`penelope::par`) constructs pipelines inside
// worker threads and moves their results and parts across the thread
// boundary at merge time. These assertions pin that contract: growing a
// non-`Send` member (an `Rc`, a raw pointer, a thread-bound cache handle)
// into any of these types must fail to compile here, not erupt as a trait
// error three crates up.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Pipeline>();
    assert_send::<Parts>();
    assert_send::<PipelineConfig>();
    assert_send::<RunResult>();
    assert_send::<NoHooks>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::suite::Suite;
    use tracegen::trace::TraceSpec;

    fn run_trace(n: usize) -> (Pipeline, RunResult) {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let trace = TraceSpec::new(Suite::SpecInt2000, 0).generate(n);
        let result = pipe.run(trace, &mut NoHooks);
        (pipe, result)
    }

    #[test]
    fn retires_every_uop() {
        let (_, result) = run_trace(5_000);
        assert_eq!(result.uops, 5_000);
        assert!(result.cycles > 0);
    }

    #[test]
    fn cpi_is_plausible() {
        let (_, result) = run_trace(20_000);
        let cpi = result.cpi();
        assert!(
            (0.3..=3.0).contains(&cpi),
            "CPI {cpi} outside plausible range"
        );
    }

    #[test]
    fn smaller_cache_raises_cpi() {
        let big = PipelineConfig::default();
        let small = PipelineConfig {
            dl0: CacheConfig::dl0(8, 8),
            dtlb_entries: 32,
            ..PipelineConfig::default()
        };
        let trace = || TraceSpec::new(Suite::Server, 0).generate(30_000);
        let mut p_big = Pipeline::new(big);
        let mut p_small = Pipeline::new(small);
        let r_big = p_big.run(trace(), &mut NoHooks);
        let r_small = p_small.run(trace(), &mut NoHooks);
        assert!(
            r_small.cpi() > r_big.cpi(),
            "8KB/32ent ({}) must be slower than 32KB/128ent ({})",
            r_small.cpi(),
            r_big.cpi()
        );
    }

    #[test]
    fn uniform_policy_balances_alu_ports() {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let trace = TraceSpec::new(Suite::Office, 0).generate(30_000);
        let result = pipe.run(trace, &mut NoHooks);
        let u = result.adder_utilization();
        // Port 1 also serves mul (rare in Office), so 0 vs 1 stay close.
        assert!((u[0] - u[1]).abs() < 0.07, "u0={} u1={}", u[0], u[1]);
        // §4.3 band: uniform distribution puts per-adder utilization in the
        // vicinity of 21%.
        assert!(
            (0.08..=0.40).contains(&u[0]),
            "ALU adder utilization {} outside band",
            u[0]
        );
    }

    #[test]
    fn prioritized_policy_skews_alu_ports() {
        let cfg = PipelineConfig {
            adder_policy: AdderPolicy::Prioritized,
            ..PipelineConfig::default()
        };
        let mut pipe = Pipeline::new(cfg);
        let trace = TraceSpec::new(Suite::Office, 0).generate(30_000);
        let result = pipe.run(trace, &mut NoHooks);
        let u = result.adder_utilization();
        assert!(u[0] > u[1] + 0.05, "u0={} u1={}", u[0], u[1]);
    }

    #[test]
    fn structures_report_occupancy_after_run() {
        let (mut pipe, _) = run_trace(20_000);
        let now = pipe.now();
        let sched_occ = pipe.parts.sched.occupancy(now);
        assert!(
            (0.2..=0.95).contains(&sched_occ),
            "scheduler occupancy {sched_occ}"
        );
        let int_free = pipe.parts.int_rf.free_fraction(now);
        assert!((0.2..=0.9).contains(&int_free), "int free {int_free}");
    }

    #[test]
    fn multiple_runs_accumulate() {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let r1 = pipe.run(
            TraceSpec::new(Suite::Office, 0).generate(1_000),
            &mut NoHooks,
        );
        let r2 = pipe.run(
            TraceSpec::new(Suite::Office, 1).generate(1_000),
            &mut NoHooks,
        );
        assert_eq!(r1.uops, 1_000);
        assert_eq!(r2.uops, 1_000);
        let mut merged = r1.clone();
        merged.merge(&r2);
        assert_eq!(merged.uops, 2_000);
        assert_eq!(merged.cycles, r1.cycles + r2.cycles);
    }

    #[test]
    fn hooks_receive_events() {
        #[derive(Default)]
        struct Counter {
            releases: u64,
            sched_releases: u64,
            dl0: u64,
            cycles: u64,
        }
        impl Hooks for Counter {
            fn regfile_released(
                &mut self,
                _rf: &mut RegisterFile,
                _class: RegClass,
                _preg: PhysReg,
                _now: u64,
            ) {
                self.releases += 1;
            }
            fn scheduler_released(&mut self, _s: &mut Scheduler, _slot: SlotId, _now: u64) {
                self.sched_releases += 1;
            }
            fn dl0_accessed(&mut self, _c: &mut SetAssocCache, _o: &AccessOutcome, _now: u64) {
                self.dl0 += 1;
            }
            fn cycle_end(&mut self, _p: &mut Parts, _now: u64) {
                self.cycles += 1;
            }
        }
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let mut hooks = Counter::default();
        let result = pipe.run(
            TraceSpec::new(Suite::Multimedia, 0).generate(5_000),
            &mut hooks,
        );
        assert_eq!(hooks.sched_releases, 5_000);
        assert!(hooks.releases > 0);
        assert!(hooks.dl0 > 0);
        assert_eq!(hooks.cycles, result.cycles);
    }

    #[test]
    fn mob_ids_drain() {
        let (pipe, _) = run_trace(10_000);
        assert_eq!(pipe.parts.mob.in_use_count(), 0, "all MOB ids released");
    }
}
