//! The data TLB.
//!
//! Architecturally a small, page-granular, 8-way cache of translations; the
//! inversion schemes of §3.2.1 apply to it exactly as to the DL0 (Table 3
//! evaluates 32/64/128-entry DTLBs). Modeled as a thin wrapper over
//! [`SetAssocCache`] with 4KB "lines".

use nbti_model::duty::Duty;

use crate::cache::{AccessOutcome, CacheConfig, CacheStats, SetAssocCache};

/// Page size assumed by the DTLB.
pub const PAGE_BYTES: u64 = 4096;

/// A data TLB.
///
/// # Example
///
/// ```
/// use uarch::tlb::Dtlb;
///
/// let mut tlb = Dtlb::new(64, 8);
/// assert!(!tlb.translate(0x1234_5678, 0).hit);
/// assert!(tlb.translate(0x1234_5000, 1).hit, "same page");
/// ```
#[derive(Debug, Clone)]
pub struct Dtlb {
    cache: SetAssocCache,
}

impl Dtlb {
    /// Creates a DTLB with the given entry count and associativity.
    pub fn new(entries: u32, ways: u16) -> Self {
        Dtlb {
            cache: SetAssocCache::new(CacheConfig::dtlb(entries, ways)),
        }
    }

    /// Number of translation entries.
    pub fn entries(&self) -> usize {
        self.cache.config().lines()
    }

    /// Looks up (and on miss, fills) the translation for a virtual address.
    pub fn translate(&mut self, vaddr: u64, now: u64) -> AccessOutcome {
        self.cache.access(vaddr, now)
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Instantaneous fraction of entries holding a valid translation.
    pub fn valid_fraction(&self) -> f64 {
        self.cache.valid_fraction()
    }

    /// Worst cell duty over the entry valid bits up to `now` (word-parallel
    /// residency accounting in the underlying cache).
    pub fn worst_valid_cell_duty(&mut self, now: u64) -> Duty {
        self.cache.worst_valid_cell_duty(now)
    }

    /// The underlying cache, for the NBTI inversion schemes.
    pub fn cache_mut(&mut self) -> &mut SetAssocCache {
        &mut self.cache
    }

    /// The underlying cache, read-only.
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut tlb = Dtlb::new(32, 8);
        tlb.translate(0x0000, 0);
        assert!(tlb.translate(0x0FFF, 1).hit, "same 4KB page");
        assert!(!tlb.translate(0x1000, 2).hit, "next page misses");
    }

    #[test]
    fn capacity_misses_appear_when_pages_exceed_entries() {
        let mut small = Dtlb::new(32, 8);
        let mut large = Dtlb::new(128, 8);
        // Touch 64 pages twice.
        for round in 0..2 {
            for p in 0..64u64 {
                let now = round * 64 + p;
                small.translate(p * PAGE_BYTES, now);
                large.translate(p * PAGE_BYTES, now);
            }
        }
        assert!(small.stats().misses() > large.stats().misses());
        assert_eq!(large.stats().misses(), 64, "128 entries hold 64 pages");
    }

    #[test]
    fn entries_reported() {
        assert_eq!(Dtlb::new(128, 8).entries(), 128);
    }

    #[test]
    fn valid_bit_duty_reads_through_the_wrapper() {
        let mut tlb = Dtlb::new(32, 8);
        tlb.translate(0, 0);
        // 31 never-valid entries pin the worst cell duty at 1.
        assert!((tlb.worst_valid_cell_duty(10).fraction() - 1.0).abs() < 1e-12);
    }
}
