//! Physical register files.
//!
//! An explicitly managed block with large idle time (§4.4): entries are
//! allocated at rename, written at execute, and released when the next
//! writer of the same architectural register retires. Between release and
//! the next allocation a register is *free but keeps its last value* — that
//! is precisely the window Penelope's ISV technique exploits by rewriting
//! free entries with inverted sampled values through spare write ports.
//!
//! Statistics reproduced from the paper: integer registers free 54% of the
//! time (FP 69%); a spare write port is found at 92% (86%) of releases;
//! baseline worst-bit bias 89.9% (INT) / 84.2% (FP).

use std::collections::VecDeque;

use crate::bitstats::{BitResidency, OccupancyTracker, TrackedWord};

/// Identifier of a physical register.
pub type PhysReg = u16;

/// Register file parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileConfig {
    /// Number of physical registers.
    pub entries: u16,
    /// Bits per register (32 integer, 80 FP).
    pub width: usize,
    /// Write ports shared by real writes and opportunistic (ISV) writes.
    pub write_ports: u8,
}

impl RegFileConfig {
    /// The integer register file of the paper: 128 × 32-bit, highly ported.
    pub fn integer() -> Self {
        RegFileConfig {
            entries: 128,
            width: 32,
            write_ports: 4,
        }
    }

    /// The FP register file: 128 × 80-bit.
    pub fn floating_point() -> Self {
        RegFileConfig {
            entries: 128,
            width: 80,
            write_ports: 2,
        }
    }
}

/// Per-cycle write-port budget tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PortState {
    cycle: u64,
    used: u8,
}

/// A physical register file with free-list allocation, port contention and
/// per-bit residency accounting.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    config: RegFileConfig,
    cells: Vec<TrackedWord>,
    busy: Vec<bool>,
    free_list: VecDeque<PhysReg>,
    residency: BitResidency,
    occupancy: OccupancyTracker,
    ports: PortState,
    releases: u64,
    releases_with_port: u64,
}

impl RegisterFile {
    /// Creates a register file; all registers start free and hold zero
    /// (a freshly powered structure), at time 0.
    pub fn new(config: RegFileConfig) -> Self {
        assert!(config.entries > 0, "need at least one register");
        assert!((1..=128).contains(&config.width), "width must be 1..=128");
        assert!(config.write_ports > 0, "need at least one write port");
        RegisterFile {
            cells: vec![TrackedWord::new(0, 0); usize::from(config.entries)],
            busy: vec![false; usize::from(config.entries)],
            free_list: (0..config.entries).collect(),
            residency: BitResidency::new(config.width),
            occupancy: OccupancyTracker::new(u64::from(config.entries), 0),
            ports: PortState { cycle: 0, used: 0 },
            releases: 0,
            releases_with_port: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RegFileConfig {
        &self.config
    }

    fn roll_cycle(&mut self, now: u64) {
        if self.ports.cycle != now {
            self.ports = PortState {
                cycle: now,
                used: 0,
            };
        }
    }

    /// Whether a write port is still free in cycle `now`.
    pub fn port_available(&mut self, now: u64) -> bool {
        self.roll_cycle(now);
        self.ports.used < self.config.write_ports
    }

    /// Allocates a free register at time `now` (rename), or `None` if the
    /// free list is empty. The entry keeps its stale value until written.
    pub fn allocate(&mut self, now: u64) -> Option<PhysReg> {
        // FIFO: a just-released register goes to the back of the queue, so
        // every register rotates through use (and through balancing
        // updates) rather than a small set being reused.
        let preg = self.free_list.pop_front()?;
        self.busy[usize::from(preg)] = true;
        self.occupancy.acquire(now);
        Some(preg)
    }

    /// Writes a result value (architectural write; always succeeds and
    /// consumes a port).
    ///
    /// # Panics
    ///
    /// Panics if `preg` is out of range.
    pub fn write(&mut self, preg: PhysReg, value: u128, now: u64) {
        self.roll_cycle(now);
        self.ports.used = self.ports.used.saturating_add(1);
        self.cells[usize::from(preg)].write(value, now, &mut self.residency);
    }

    /// Releases a register back to the free list at time `now`. The cell
    /// keeps its content. Returns whether a spare write port was available
    /// in this cycle (the paper's 92%/86% statistic).
    ///
    /// # Panics
    ///
    /// Panics if the register was not busy.
    pub fn release(&mut self, preg: PhysReg, now: u64) -> bool {
        let idx = usize::from(preg);
        assert!(self.busy[idx], "releasing a free register {preg}");
        self.busy[idx] = false;
        self.free_list.push_back(preg);
        self.occupancy.release(now);
        self.releases += 1;
        let port_free = self.port_available(now);
        if port_free {
            self.releases_with_port += 1;
        }
        port_free
    }

    /// Opportunistic write into a *free* register (the ISV update path):
    /// succeeds only when the entry is free and a write port is available
    /// this cycle.
    pub fn try_write_free(&mut self, preg: PhysReg, value: u128, now: u64) -> bool {
        let idx = usize::from(preg);
        if self.busy[idx] || !self.port_available(now) {
            return false;
        }
        self.ports.used += 1;
        self.cells[idx].write(value, now, &mut self.residency);
        true
    }

    /// Whether the register is currently allocated.
    pub fn is_busy(&self, preg: PhysReg) -> bool {
        self.busy[usize::from(preg)]
    }

    /// Current content of a register (regardless of busy state).
    pub fn value_of(&self, preg: PhysReg) -> u128 {
        self.cells[usize::from(preg)].value()
    }

    /// Number of free registers.
    pub fn free_count(&self) -> usize {
        self.free_list.len()
    }

    /// Number of physical registers.
    pub fn entries(&self) -> usize {
        usize::from(self.config.entries)
    }

    /// Number of currently allocated registers.
    pub fn busy_count(&self) -> usize {
        self.entries() - self.free_count()
    }

    /// Flushes residency accounting of every cell up to `now`. Call before
    /// reading [`RegisterFile::residency`].
    pub fn sync(&mut self, now: u64) {
        for cell in &mut self.cells {
            cell.flush(now, &mut self.residency);
        }
    }

    /// Per-bit-position residency (aggregated over all registers). Only
    /// accurate up to the last [`RegisterFile::sync`].
    pub fn residency(&self) -> &BitResidency {
        &self.residency
    }

    /// Average fraction of registers free up to `now` (the paper's 54%/69%
    /// numbers).
    pub fn free_fraction(&mut self, now: u64) -> f64 {
        self.occupancy.free_fraction(now).fraction()
    }

    /// Non-mutating counterpart of [`RegisterFile::free_fraction`] for
    /// telemetry sampling: reads the same integral without perturbing the
    /// tracker's event clock.
    pub fn free_fraction_at(&self, now: u64) -> f64 {
        self.occupancy.free_fraction_at(now).fraction()
    }

    /// Fraction of releases that found a spare write port (92% INT / 86%
    /// FP in the paper).
    pub fn release_port_availability(&self) -> f64 {
        if self.releases == 0 {
            return 1.0;
        }
        self.releases_with_port as f64 / self.releases as f64
    }

    /// Total releases observed.
    pub fn releases(&self) -> u64 {
        self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RegisterFile {
        RegisterFile::new(RegFileConfig {
            entries: 4,
            width: 8,
            write_ports: 2,
        })
    }

    #[test]
    fn allocate_release_cycle() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        let b = rf.allocate(0).unwrap();
        assert_ne!(a, b);
        assert!(rf.is_busy(a));
        assert_eq!(rf.free_count(), 2);
        rf.release(a, 5);
        assert!(!rf.is_busy(a));
        assert_eq!(rf.free_count(), 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = small();
        for _ in 0..4 {
            assert!(rf.allocate(0).is_some());
        }
        assert!(rf.allocate(0).is_none());
    }

    #[test]
    fn released_register_keeps_its_value() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        rf.write(a, 0xAB, 1);
        rf.release(a, 2);
        assert_eq!(rf.value_of(a), 0xAB);
    }

    #[test]
    fn residency_tracks_cell_contents() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        rf.write(a, 0xFF, 0);
        rf.sync(10);
        // Register a held 0xFF for 10 cycles; the other three held 0.
        // bit 0: zero for 30 of 40 entry-cycles.
        assert!((rf.residency().bias(0).fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn port_budget_limits_opportunistic_writes() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        let b = rf.allocate(0).unwrap();
        rf.release(a, 3);
        rf.release(b, 3);
        // Two ports: two opportunistic writes fit in one cycle, not three.
        assert!(rf.try_write_free(a, 1, 4));
        assert!(rf.try_write_free(b, 1, 4));
        assert!(!rf.try_write_free(a, 2, 4));
        // Next cycle the budget resets.
        assert!(rf.try_write_free(a, 2, 5));
    }

    #[test]
    fn opportunistic_write_requires_free_entry() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        assert!(!rf.try_write_free(a, 1, 1), "entry is busy");
    }

    #[test]
    fn real_writes_consume_the_port_budget() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        let b = rf.allocate(0).unwrap();
        rf.write(a, 1, 7);
        rf.write(b, 2, 7);
        rf.release(a, 7);
        // Both ports used by real writes → release finds no port.
        assert!(!rf.try_write_free(a, 3, 7));
        assert!((rf.release_port_availability() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn free_fraction_integrates() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        rf.release(a, 10);
        // 1 of 4 busy over [0, 10), all free over [10, 20).
        assert!((rf.free_fraction(20) - (1.0 - 10.0 / 80.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "free register")]
    fn double_release_panics() {
        let mut rf = small();
        let a = rf.allocate(0).unwrap();
        rf.release(a, 1);
        rf.release(a, 2);
    }

    #[test]
    fn paper_configs() {
        let int = RegFileConfig::integer();
        assert_eq!(int.entries, 128);
        assert_eq!(int.width, 32);
        let fp = RegFileConfig::floating_point();
        assert_eq!(fp.width, 80);
    }
}
