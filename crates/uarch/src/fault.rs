//! Deterministic fault strikes against live pipeline structures.
//!
//! The Penelope mechanisms rewrite structure state opportunistically
//! (inverted RINV images into free registers and slots, inverted cache
//! lines). A robustness harness needs the dual: *adversarial* rewrites that
//! corrupt state mid-run so the mechanisms and their invariant checks can be
//! exercised under stress. [`apply`] lands one [`StructureFault`] on a
//! [`crate::pipeline::Parts`], using only the public mutation surface the
//! balancing mechanisms themselves use — so a strike is always a state the
//! structures could legally reach, never undefined behaviour.

use crate::pipeline::{Parts, RegClass};
use crate::scheduler::Field;

/// Which cache-like structure a strike targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTarget {
    /// First-level data cache.
    Dl0,
    /// Second-level cache (strike misses if not configured).
    L2,
    /// Data TLB.
    Dtlb,
    /// Branch target buffer.
    Btb,
}

impl CacheTarget {
    /// All strikeable cache targets.
    pub const ALL: [CacheTarget; 4] = [
        CacheTarget::Dl0,
        CacheTarget::L2,
        CacheTarget::Dtlb,
        CacheTarget::Btb,
    ];
}

/// One adversarial rewrite of live structure state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureFault {
    /// Force-invert one line of one set (as the cache schemes do, but at
    /// an arbitrary moment): an invalid line if the set has one, else the
    /// LRU valid line.
    InvertCacheLine {
        /// Target structure.
        target: CacheTarget,
        /// Set index (reduced modulo the set count).
        set: usize,
    },
    /// Invalidate every line of a structure (a cold-start shock).
    FlushCache {
        /// Target structure.
        target: CacheTarget,
    },
    /// XOR a mask into one physical register's value.
    RegfileBitFlip {
        /// Integer or FP file.
        class: RegClass,
        /// Register index (reduced modulo the file size).
        preg: u16,
        /// Bits to flip (reduced modulo the register width).
        mask: u128,
    },
    /// XOR a mask into one scheduler slot field.
    SchedulerFieldFlip {
        /// Slot index (reduced modulo the slot count).
        slot: usize,
        /// Which of the 18 fields to corrupt.
        field: Field,
        /// Bits to flip (the scheduler masks to the field width).
        mask: u128,
    },
}

/// Applies one strike to the pipeline structures at time `now`. Returns
/// whether the strike landed (an L2 strike without an L2, a cache set with
/// no invertible line, or a register write without a spare port all miss).
pub fn apply(parts: &mut Parts, fault: &StructureFault, now: u64) -> bool {
    match *fault {
        StructureFault::InvertCacheLine { target, set } => {
            let cache = match target {
                CacheTarget::Dl0 => &mut parts.dl0,
                CacheTarget::L2 => match parts.l2.as_mut() {
                    Some(l2) => l2,
                    None => return false,
                },
                CacheTarget::Dtlb => parts.dtlb.cache_mut(),
                CacheTarget::Btb => parts.btb.cache_mut(),
            };
            let sets = cache.set_count();
            cache.invert_line_in(set % sets, now).is_some()
        }
        StructureFault::FlushCache { target } => {
            let cache = match target {
                CacheTarget::Dl0 => &mut parts.dl0,
                CacheTarget::L2 => match parts.l2.as_mut() {
                    Some(l2) => l2,
                    None => return false,
                },
                CacheTarget::Dtlb => parts.dtlb.cache_mut(),
                CacheTarget::Btb => parts.btb.cache_mut(),
            };
            cache.invalidate_all(now);
            true
        }
        StructureFault::RegfileBitFlip { class, preg, mask } => {
            let rf = match class {
                RegClass::Int => &mut parts.int_rf,
                RegClass::Fp => &mut parts.fp_rf,
            };
            let entries = rf.config().entries;
            let width = rf.config().width;
            let preg = preg % entries;
            let mask = if width >= 128 {
                mask
            } else {
                mask & ((1u128 << width) - 1)
            };
            let flipped = rf.value_of(preg) ^ mask;
            if rf.is_busy(preg) {
                // Architectural-style write: always lands, consumes a port.
                rf.write(preg, flipped, now);
                true
            } else {
                // Free entries only accept writes through a spare port,
                // exactly like the ISV balancing path.
                rf.try_write_free(preg, flipped, now)
            }
        }
        StructureFault::SchedulerFieldFlip { slot, field, mask } => {
            let slot = slot % parts.sched.len();
            let flipped = parts.sched.field_value(slot, field) ^ mask;
            parts.sched.write_field(slot, field, flipped, now);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};

    fn pipeline() -> Pipeline {
        Pipeline::new(PipelineConfig::default())
    }

    #[test]
    fn cache_inversion_lands_and_is_visible() {
        let mut pipe = pipeline();
        let p = &mut pipe.parts;
        let landed = apply(
            p,
            &StructureFault::InvertCacheLine {
                target: CacheTarget::Dl0,
                set: 12345,
            },
            10,
        );
        assert!(landed);
        assert_eq!(p.dl0.inverted_count(), 1);
    }

    #[test]
    fn l2_strikes_miss_without_an_l2() {
        let mut pipe = pipeline();
        let p = &mut pipe.parts;
        assert!(p.l2.is_none());
        assert!(!apply(
            p,
            &StructureFault::FlushCache {
                target: CacheTarget::L2
            },
            0,
        ));
    }

    #[test]
    fn regfile_bit_flip_changes_the_value() {
        let mut pipe = pipeline();
        let p = &mut pipe.parts;
        // Register 200 reduces modulo the file size; it starts free and
        // zero, so a landed strike leaves exactly the mask bits set.
        let preg = 200 % p.int_rf.config().entries;
        let landed = apply(
            p,
            &StructureFault::RegfileBitFlip {
                class: RegClass::Int,
                preg: 200,
                mask: 0b1010,
            },
            5,
        );
        assert!(landed);
        assert_eq!(p.int_rf.value_of(preg), 0b1010);
    }

    #[test]
    fn scheduler_field_flip_masks_to_field_width() {
        let mut pipe = pipeline();
        let p = &mut pipe.parts;
        apply(
            p,
            &StructureFault::SchedulerFieldFlip {
                slot: 999,
                field: Field::Valid,
                mask: u128::MAX,
            },
            3,
        );
        let slot = 999 % p.sched.len();
        assert_eq!(p.sched.field_value(slot, Field::Valid), 1);
    }
}
