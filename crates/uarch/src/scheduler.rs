//! The data-capture scheduler (reservation stations).
//!
//! An explicitly managed block with *short* idle time (§4.5): occupancy is
//! around 63%, and different fields show wildly different bias — some flag,
//! shift and latency bits are "0" (or "1") almost 100% of the time. The slot
//! layout follows Table 2 exactly (144 bits; Figure 8 plots all fields but
//! the opcode).
//!
//! The scheduler is modeled as a storage structure: allocation captures the
//! field values of a uop, release frees the slot but *keeps the contents*
//! (bit cells do not forget), and `write_field` allows both ready-bit
//! updates while busy and NBTI-balancing writes into free slots.

use crate::bitstats::{BitResidency, OccupancyTracker, TrackedWord};
use tracegen::uop::{Uop, UopClass};

/// One field of a scheduler slot (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// Slot is valid (1 bit). Cannot be protected: its contents are always
    /// live.
    Valid,
    /// Latency of the uop (5 bits).
    Latency,
    /// Issue port, one-hot (5 bits).
    Port,
    /// Branch taken (1 bit).
    Taken,
    /// Memory Order Buffer identifier (6 bits). Self-balanced.
    MobId,
    /// FP top-of-stack position (3 bits).
    Tos,
    /// Condition flags (6 bits).
    Flags,
    /// Source 1 needs an AH/BH/CH/DH shift (1 bit).
    Shift1,
    /// Source 2 needs an AH/BH/CH/DH shift (1 bit).
    Shift2,
    /// Destination register tag (7 bits). Self-balanced.
    DstTag,
    /// Source 1 register tag (7 bits). Self-balanced.
    Src1Tag,
    /// Source 2 register tag (7 bits). Self-balanced.
    Src2Tag,
    /// Source 1 ready (1 bit).
    Ready1,
    /// Source 2 ready (1 bit).
    Ready2,
    /// Captured source 1 data (32 bits).
    Src1Data,
    /// Captured source 2 data (32 bits).
    Src2Data,
    /// Immediate (16 bits).
    Immediate,
    /// Uop opcode (12 bits). Excluded from Figure 8.
    Opcode,
}

impl Field {
    /// All fields in Table 2 order.
    pub const ALL: [Field; 18] = [
        Field::Valid,
        Field::Latency,
        Field::Port,
        Field::Taken,
        Field::MobId,
        Field::Tos,
        Field::Flags,
        Field::Shift1,
        Field::Shift2,
        Field::DstTag,
        Field::Src1Tag,
        Field::Src2Tag,
        Field::Ready1,
        Field::Ready2,
        Field::Src1Data,
        Field::Src2Data,
        Field::Immediate,
        Field::Opcode,
    ];

    /// Width of the field in bits (Table 2).
    pub fn width(self) -> usize {
        match self {
            Field::Valid | Field::Taken | Field::Shift1 | Field::Shift2 => 1,
            Field::Ready1 | Field::Ready2 => 1,
            Field::Tos => 3,
            Field::Latency | Field::Port => 5,
            Field::MobId | Field::Flags => 6,
            Field::DstTag | Field::Src1Tag | Field::Src2Tag => 7,
            Field::Opcode => 12,
            Field::Immediate => 16,
            Field::Src1Data | Field::Src2Data => 32,
        }
    }

    /// Short name as in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Field::Valid => "Valid",
            Field::Latency => "Latency",
            Field::Port => "Port",
            Field::Taken => "Taken",
            Field::MobId => "MOB id",
            Field::Tos => "tos",
            Field::Flags => "Flags",
            Field::Shift1 => "shift1",
            Field::Shift2 => "shift2",
            Field::DstTag => "DST tag",
            Field::Src1Tag => "SRC1 tag",
            Field::Src2Tag => "SRC2 tag",
            Field::Ready1 => "ready1",
            Field::Ready2 => "ready2",
            Field::Src1Data => "SRC1 data",
            Field::Src2Data => "SRC2 data",
            Field::Immediate => "Immediate",
            Field::Opcode => "Opcode",
        }
    }

    /// Index into [`Field::ALL`]. The variants are declared in Table 2
    /// order, so the discriminant *is* the index (pinned by a test).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the field is a *data* field, which is no longer needed once
    /// the uop issues (paper: "SRC1 data, SRC2 data and immediate ... are
    /// available 70-75% of the time").
    pub fn is_data(self) -> bool {
        matches!(self, Field::Src1Data | Field::Src2Data | Field::Immediate)
    }

    /// Whether the field's activity is self-balanced (register tags and MOB
    /// id; entries/slots are used evenly).
    pub fn is_self_balanced(self) -> bool {
        matches!(
            self,
            Field::DstTag | Field::Src1Tag | Field::Src2Tag | Field::MobId
        )
    }
}

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Total bits per slot (144 with the 12-bit opcode).
pub fn slot_bits() -> usize {
    Field::ALL.iter().map(|f| f.width()).sum()
}

/// Which data fields a uop actually uses; unused fields count as available
/// for balancing from the moment of allocation ("they ... are not used at
/// all for some instructions", §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataUsage {
    /// `SRC1 data` is captured.
    pub src1: bool,
    /// `SRC2 data` is captured.
    pub src2: bool,
    /// `Immediate` is present.
    pub imm: bool,
}

impl DataUsage {
    fn count(self) -> u64 {
        u64::from(self.src1) + u64::from(self.src2) + u64::from(self.imm)
    }
}

/// Values captured into a slot at allocation.
///
/// Fields that a uop does not use (the MOB id of a non-memory uop, the
/// destination tag of a store, ...) are *not driven*: allocation leaves the
/// old cell contents in place, exactly as hardware whose write enables stay
/// low. This is what makes the tag/MOB-id fields self-balanced (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryValues {
    values: [u128; 18],
    driven: [bool; 18],
    /// Concatenated driven values and write-enable masks per group, derived
    /// from `values`/`driven` (see the layout constants below). Allocation
    /// merges these into the slot's group words in one step.
    group_val: [u128; 2],
    group_driven: [u128; 2],
}

fn concat_groups(values: &[u128; 18], driven: &[bool; 18]) -> ([u128; 2], [u128; 2]) {
    let mut gv = [0u128; 2];
    let mut gd = [0u128; 2];
    for i in 0..18 {
        let g = GROUP_OF[i];
        if g == NO_GROUP || !driven[i] {
            continue;
        }
        let g = g as usize;
        gd[g] |= FIELD_MASKS[i] << FIELD_OFFSETS[i];
        gv[g] |= (values[i] & FIELD_MASKS[i]) << FIELD_OFFSETS[i];
    }
    (gv, gd)
}

impl EntryValues {
    /// Builds slot contents from a uop and rename information.
    pub fn from_uop(
        uop: &Uop,
        dst_tag: u8,
        src1_tag: u8,
        src2_tag: u8,
        mob_id: u8,
        ready1: bool,
        ready2: bool,
    ) -> Self {
        let mut driven = [true; 18];
        driven[Field::MobId.index()] = uop.class.is_memory();
        driven[Field::DstTag.index()] = uop.dst.is_some();
        driven[Field::Src1Tag.index()] = uop.src1.is_some();
        driven[Field::Src2Tag.index()] = uop.src2.is_some();
        driven[Field::Src1Data.index()] = uop.src1.is_some();
        driven[Field::Src2Data.index()] = uop.src2.is_some();
        driven[Field::Immediate.index()] = uop.immediate.is_some();
        driven[Field::Taken.index()] = uop.class == UopClass::Branch;
        driven[Field::Tos.index()] = uop.class.is_fp();
        let mut values = [0u128; 18];
        values[Field::Valid.index()] = 1;
        values[Field::Latency.index()] = u128::from(uop.latency & 0x1F);
        values[Field::Port.index()] = 1u128 << (uop.port % 5);
        values[Field::Taken.index()] = u128::from(uop.taken);
        values[Field::MobId.index()] = u128::from(mob_id & 0x3F);
        values[Field::Tos.index()] = u128::from(uop.tos & 0x7);
        values[Field::Flags.index()] = u128::from(uop.flags & 0x3F);
        values[Field::Shift1.index()] = u128::from(uop.shift1);
        values[Field::Shift2.index()] = u128::from(uop.shift2);
        values[Field::DstTag.index()] = u128::from(dst_tag & 0x7F);
        values[Field::Src1Tag.index()] = u128::from(src1_tag & 0x7F);
        values[Field::Src2Tag.index()] = u128::from(src2_tag & 0x7F);
        values[Field::Ready1.index()] = u128::from(ready1);
        values[Field::Ready2.index()] = u128::from(ready2);
        values[Field::Src1Data.index()] = u128::from(uop.src1_val);
        values[Field::Src2Data.index()] = u128::from(uop.src2_val);
        values[Field::Immediate.index()] = u128::from(uop.immediate.unwrap_or(0));
        values[Field::Opcode.index()] = u128::from(uop.opcode & 0xFFF);
        let (group_val, group_driven) = concat_groups(&values, &driven);
        EntryValues {
            values,
            driven,
            group_val,
            group_driven,
        }
    }

    /// The value of one field.
    pub fn get(&self, field: Field) -> u128 {
        self.values[field.index()]
    }

    /// Whether allocation drives (writes) the field.
    pub fn is_driven(&self, field: Field) -> bool {
        self.driven[field.index()]
    }

    /// Overwrites one field (marks it driven).
    pub fn set(&mut self, field: Field, value: u128) {
        let i = field.index();
        self.values[i] = value & FIELD_MASKS[i];
        self.driven[i] = true;
        if GROUP_OF[i] != NO_GROUP {
            let g = GROUP_OF[i] as usize;
            let mask = FIELD_MASKS[i] << FIELD_OFFSETS[i];
            self.group_driven[g] |= mask;
            self.group_val[g] = (self.group_val[g] & !mask) | (self.values[i] << FIELD_OFFSETS[i]);
        }
    }
}

/// Field widths in Table 2 order (pinned to [`Field::width`] by a test);
/// spelled as a const so the concatenation layout below is computable at
/// compile time.
const FIELD_WIDTHS: [u32; 18] = [1, 5, 5, 1, 6, 3, 6, 1, 1, 7, 7, 7, 1, 1, 32, 32, 16, 12];

/// Storage layout of a slot: the three 1-bit fields that are written on
/// their own schedule (`Valid` at release, `Ready1`/`Ready2` at wakeup)
/// stay individually tracked words, and the remaining fifteen — which only
/// change together, at allocation or under balancing — are packed into two
/// concatenated words so one residency charge covers all of them.
///
/// `SINGLE_FIELDS` lists the individually tracked field indices; every
/// other field maps through `GROUP_OF`/`FIELD_OFFSETS` into group 0
/// (control fields, 49 bits) or group 1 (data fields, 92 bits).
const SINGLE_FIELDS: [usize; 3] = [0, 12, 13];

/// Group of each field (`NO_GROUP` for the singles).
const NO_GROUP: u8 = u8::MAX;
const fn group_of() -> [u8; 18] {
    let mut g = [NO_GROUP; 18];
    let mut i = 1;
    while i < 12 {
        g[i] = 0;
        i += 1;
    }
    let mut i = 14;
    while i < 18 {
        g[i] = 1;
        i += 1;
    }
    g
}
const GROUP_OF: [u8; 18] = group_of();

const fn group_widths() -> [usize; 2] {
    let mut w = [0usize; 2];
    let mut i = 0;
    while i < 18 {
        if GROUP_OF[i] != NO_GROUP {
            w[GROUP_OF[i] as usize] += FIELD_WIDTHS[i] as usize;
        }
        i += 1;
    }
    w
}

/// Widths of the two concatenation groups (49 control + 92 data bits;
/// with the three singles that is the slot's 144 bits).
const GROUP_WIDTHS: [usize; 2] = group_widths();

/// Low-bits masks of the two group words.
const GROUP_MASKS: [u128; 2] = [
    (1u128 << GROUP_WIDTHS[0]) - 1,
    (1u128 << GROUP_WIDTHS[1]) - 1,
];

const fn field_offsets() -> [u32; 18] {
    let mut off = [0u32; 18];
    let mut acc = [0u32; 2];
    let mut i = 0;
    while i < 18 {
        if GROUP_OF[i] != NO_GROUP {
            off[i] = acc[GROUP_OF[i] as usize];
            acc[GROUP_OF[i] as usize] += FIELD_WIDTHS[i];
        }
        i += 1;
    }
    off
}

/// Offset of each grouped field within its group's concatenated word.
const FIELD_OFFSETS: [u32; 18] = field_offsets();

const fn field_masks() -> [u128; 18] {
    let mut m = [0u128; 18];
    let mut i = 0;
    while i < 18 {
        m[i] = (1u128 << FIELD_WIDTHS[i]) - 1;
        i += 1;
    }
    m
}

/// Low-bits mask of each field.
const FIELD_MASKS: [u128; 18] = field_masks();

/// Member fields of each group, in offset order (for draining the group
/// accumulators back into per-field residency).
const GROUP_MEMBERS: [&[usize]; 2] = [&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], &[14, 15, 16, 17]];

/// Index into `Slot::singles` for an individually tracked field.
const fn single_slot(i: usize) -> Option<usize> {
    match i {
        0 => Some(0),
        12 => Some(1),
        13 => Some(2),
        _ => None,
    }
}

/// One slot. The fifteen grouped fields live as two concatenated words
/// (`group_val`) with the time each word was last changed (`group_since`);
/// Valid/Ready1/Ready2 are individually tracked.
#[derive(Debug, Clone)]
struct Slot {
    group_val: [u128; 2],
    group_since: [u64; 2],
    singles: [TrackedWord; 3],
    busy: bool,
    issued: bool,
    data_held: u64,
}

/// Identifier of a scheduler slot.
pub type SlotId = usize;

/// The 32-entry scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    slots: Vec<Slot>,
    residency: [BitResidency; 18],
    /// Staging accumulators for the grouped charges: when a group word
    /// changes (allocation, balancing write) or is flushed (sync), the whole
    /// word pays one carry-save zero-mask add covering every member field's
    /// elapsed span. Drained back into the per-field `residency` at
    /// [`Scheduler::sync`]; the integers are identical to per-field charging
    /// (zero-time is additive over disjoint bit ranges and adjacent spans).
    group_charge: [BitResidency; 2],
    occupancy: OccupancyTracker,
    /// Occupancy of the data fields (freed at issue, not at release).
    data_occupancy: OccupancyTracker,
    alloc_ports: u8,
    port_state_cycle: u64,
    ports_used: u8,
    releases: u64,
    releases_with_port: u64,
}

impl Scheduler {
    /// Scheduler size used throughout the paper.
    pub const PAPER_ENTRIES: usize = 32;

    /// Creates a scheduler with `entries` slots and `alloc_ports` write
    /// ports shared by allocation and balancing writes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `alloc_ports` is zero.
    pub fn new(entries: usize, alloc_ports: u8) -> Self {
        assert!(entries > 0, "need at least one slot");
        assert!(alloc_ports > 0, "need at least one allocation port");
        Scheduler {
            slots: vec![
                Slot {
                    group_val: [0; 2],
                    group_since: [0; 2],
                    singles: [TrackedWord::default(); 3],
                    busy: false,
                    issued: false,
                    data_held: 0,
                };
                entries
            ],
            residency: std::array::from_fn(|i| BitResidency::new(Field::ALL[i].width())),
            group_charge: [
                BitResidency::new(GROUP_WIDTHS[0]),
                BitResidency::new(GROUP_WIDTHS[1]),
            ],
            occupancy: OccupancyTracker::new(entries as u64, 0),
            // Three data fields per slot (SRC1/SRC2 data, Immediate).
            data_occupancy: OccupancyTracker::new(entries as u64 * 3, 0),
            alloc_ports,
            port_state_cycle: 0,
            ports_used: 0,
            releases: 0,
            releases_with_port: 0,
        }
    }

    /// A paper-configured scheduler: 32 entries, 4 allocation ports.
    pub fn paper_default() -> Self {
        Scheduler::new(Self::PAPER_ENTRIES, 4)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the scheduler has no slots (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn roll_cycle(&mut self, now: u64) {
        if self.port_state_cycle != now {
            self.port_state_cycle = now;
            self.ports_used = 0;
        }
    }

    /// Whether an allocation/balancing port is still free in cycle `now`.
    /// The paper observes "on average 77% of the ports from allocate are
    /// available".
    pub fn port_available(&mut self, now: u64) -> bool {
        self.roll_cycle(now);
        self.ports_used < self.alloc_ports
    }

    /// Allocates a free slot and captures `values`, consuming a port.
    /// Returns `None` when the scheduler is full. `usage` says which data
    /// fields the uop actually occupies.
    pub fn allocate(&mut self, values: &EntryValues, usage: DataUsage, now: u64) -> Option<SlotId> {
        let id = self.slots.iter().position(|s| !s.busy)?;
        self.allocate_at(id, values, usage, now);
        Some(id)
    }

    /// Allocates a specific free slot (callers that pick slots round-robin
    /// use this so freed slots are not immediately reused).
    ///
    /// # Panics
    ///
    /// Panics if the slot is busy.
    pub fn allocate_at(&mut self, id: SlotId, values: &EntryValues, usage: DataUsage, now: u64) {
        self.roll_cycle(now);
        self.ports_used = self.ports_used.saturating_add(1);
        let slot = &mut self.slots[id];
        assert!(!slot.busy, "allocating busy slot {id}");
        slot.busy = true;
        slot.issued = false;
        slot.data_held = usage.count();
        // Valid always drives to 1; Ready1/Ready2 come from the entry.
        // Rewriting the value a cell already holds does not change its
        // residency: the open span keeps accruing from the original write
        // time and settles at the next real change or flush (residency is
        // additive over adjacent spans).
        if slot.singles[0].value() != 1 {
            slot.singles[0].write(1, now, &mut self.residency[SINGLE_FIELDS[0]]);
        }
        for (single, field) in slot.singles.iter_mut().zip(SINGLE_FIELDS).skip(1) {
            let want = values.values[field];
            if single.value() != want {
                single.write(want, now, &mut self.residency[field]);
            }
        }
        // Grouped fields: merge the driven bits into each group word in one
        // step. If the word changes, the *whole group* settles its elapsed
        // span with a single carry-save zero-mask add — exact for unchanged
        // members too, since closing their span and reopening it at `now`
        // with the same value charges the same integers as leaving it open.
        for (g, mask) in GROUP_MASKS.iter().enumerate() {
            let old = slot.group_val[g];
            let merged = (old & !values.group_driven[g]) | values.group_val[g];
            if merged != old {
                let since = slot.group_since[g];
                if since != now {
                    let d = now - since;
                    self.group_charge[g].record_zeros(!old & mask, d);
                    self.group_charge[g].credit_total_time(d);
                }
                slot.group_val[g] = merged;
                slot.group_since[g] = now;
            }
        }
        self.occupancy.acquire(now);
        self.data_occupancy.acquire_n(usage.count(), now);
    }

    /// Marks the slot as issued: its data fields (`SRC data`, `Immediate`)
    /// are no longer needed and count as available from here on.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not busy or already issued.
    pub fn issue(&mut self, slot: SlotId, now: u64) {
        let s = &mut self.slots[slot];
        assert!(s.busy && !s.issued, "issuing slot {slot} in a bad state");
        s.issued = true;
        let held = s.data_held;
        s.data_held = 0;
        self.data_occupancy.release_n(held, now);
    }

    /// Whether the slot has issued.
    pub fn is_issued(&self, slot: SlotId) -> bool {
        self.slots[slot].issued
    }

    /// Releases the slot (uop completed); contents remain. Returns whether
    /// a spare port was available this cycle.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not busy.
    pub fn release(&mut self, slot: SlotId, now: u64) -> bool {
        {
            let s = &mut self.slots[slot];
            assert!(s.busy, "releasing free slot {slot}");
            let held = s.data_held;
            s.data_held = 0;
            self.data_occupancy.release_n(held, now);
            s.busy = false;
            s.issued = false;
        }
        // The valid bit drops to 0 the moment the entry frees — that write
        // is architectural, not a balancing write.
        let vi = Field::Valid.index();
        self.slots[slot].singles[0].write(0, now, &mut self.residency[vi]);
        self.occupancy.release(now);
        self.releases += 1;
        let port_free = self.port_available(now);
        if port_free {
            self.releases_with_port += 1;
        }
        port_free
    }

    /// Writes one field of a slot (ready-bit updates while busy; balancing
    /// writes while free). Does not consume a port — pair with
    /// [`Scheduler::consume_port`] for opportunistic writes.
    pub fn write_field(&mut self, slot: SlotId, field: Field, value: u128, now: u64) {
        let i = field.index();
        let masked = value & FIELD_MASKS[i];
        let s = &mut self.slots[slot];
        // Same-value writes defer the residency charge (see allocate_at):
        // balancing writes mostly re-assert the pattern already stored, so
        // the hot path reduces to a comparison.
        if let Some(k) = single_slot(i) {
            if s.singles[k].value() != masked {
                s.singles[k].write(masked, now, &mut self.residency[i]);
            }
            return;
        }
        let g = GROUP_OF[i] as usize;
        let old = s.group_val[g];
        let merged = (old & !(FIELD_MASKS[i] << FIELD_OFFSETS[i])) | (masked << FIELD_OFFSETS[i]);
        if merged == old {
            return;
        }
        let since = s.group_since[g];
        if since != now {
            let d = now - since;
            self.group_charge[g].record_zeros(!old & GROUP_MASKS[g], d);
            self.group_charge[g].credit_total_time(d);
        }
        s.group_val[g] = merged;
        s.group_since[g] = now;
    }

    /// Consumes one port in cycle `now` (for opportunistic balancing
    /// writes). Returns false (and consumes nothing) if none is free.
    pub fn consume_port(&mut self, now: u64) -> bool {
        if self.port_available(now) {
            self.ports_used += 1;
            true
        } else {
            false
        }
    }

    /// Current value of a field.
    pub fn field_value(&self, slot: SlotId, field: Field) -> u128 {
        let i = field.index();
        let s = &self.slots[slot];
        match single_slot(i) {
            Some(k) => s.singles[k].value(),
            None => (s.group_val[GROUP_OF[i] as usize] >> FIELD_OFFSETS[i]) & FIELD_MASKS[i],
        }
    }

    /// Whether a slot is busy.
    pub fn is_busy(&self, slot: SlotId) -> bool {
        self.slots[slot].busy
    }

    /// Number of slots currently busy.
    pub fn busy_count(&self) -> usize {
        self.slots.iter().filter(|s| s.busy).count()
    }

    /// Slots currently free (candidates for balancing writes).
    pub fn free_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.busy)
            .map(|(i, _)| i)
    }

    /// Flushes all residency accounting up to `now`, including the grouped
    /// allocation charges staged in the concatenation accumulators.
    pub fn sync(&mut self, now: u64) {
        let Scheduler {
            slots,
            residency,
            group_charge,
            ..
        } = self;
        for slot in slots.iter_mut() {
            for (k, &i) in SINGLE_FIELDS.iter().enumerate() {
                slot.singles[k].flush(now, &mut residency[i]);
            }
            for g in 0..2 {
                let since = slot.group_since[g];
                if since != now {
                    let d = now - since;
                    group_charge[g].record_zeros(!slot.group_val[g] & GROUP_MASKS[g], d);
                    group_charge[g].credit_total_time(d);
                    slot.group_since[g] = now;
                }
            }
        }
        self.drain_group_charge();
    }

    /// Moves the grouped-charge integers back into the per-field
    /// accumulators: the zero-counts split by bit offset, and the group's
    /// accumulated span time credits to *every* member field (a group
    /// charge covers all of them).
    fn drain_group_charge(&mut self) {
        let Scheduler {
            residency,
            group_charge,
            ..
        } = self;
        for (g, gc) in group_charge.iter_mut().enumerate() {
            let members = GROUP_MEMBERS[g];
            let total = gc.take_total_time();
            if total > 0 {
                for &i in members {
                    residency[i].credit_total_time(total);
                }
            }
            gc.drain_zero_counts(|bit, count| {
                let mut mi = 0;
                while mi + 1 < members.len() && FIELD_OFFSETS[members[mi + 1]] as usize <= bit {
                    mi += 1;
                }
                let i = members[mi];
                residency[i].credit_zero_cycles(bit - FIELD_OFFSETS[i] as usize, count);
            });
        }
    }

    /// Residency of one field (aggregated over slots). Only accurate up to
    /// the last [`Scheduler::sync`].
    pub fn field_residency(&self, field: Field) -> &BitResidency {
        &self.residency[field.index()]
    }

    /// Average slot occupancy up to `now` (the paper's 63%).
    pub fn occupancy(&mut self, now: u64) -> f64 {
        self.occupancy.occupancy(now).fraction()
    }

    /// Non-mutating counterpart of [`Scheduler::occupancy`] for telemetry
    /// sampling.
    pub fn occupancy_at(&self, now: u64) -> f64 {
        self.occupancy.occupancy_at(now).fraction()
    }

    /// Average *data-field* occupancy up to `now` (the paper's 25–30%,
    /// i.e. SRC data/immediate fields available 70–75% of the time):
    /// a data field is busy from allocation to issue, and only when the uop
    /// actually uses it.
    pub fn data_occupancy(&mut self, now: u64) -> f64 {
        self.data_occupancy.occupancy(now).fraction()
    }

    /// Non-mutating counterpart of [`Scheduler::data_occupancy`].
    pub fn data_occupancy_at(&self, now: u64) -> f64 {
        self.data_occupancy.occupancy_at(now).fraction()
    }

    /// Fraction of releases that found a spare port.
    pub fn release_port_availability(&self) -> f64 {
        if self.releases == 0 {
            return 1.0;
        }
        self.releases_with_port as f64 / self.releases as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::uop::Uop;

    fn entry() -> EntryValues {
        let mut uop = Uop::int_alu(1, 2, 3);
        uop.latency = 3;
        uop.flags = 0b10;
        EntryValues::from_uop(&uop, 10, 20, 30, 5, true, false)
    }

    #[test]
    fn slot_layout_is_table_2() {
        assert_eq!(slot_bits(), 144);
        assert_eq!(Field::Src1Data.width(), 32);
        assert_eq!(Field::Opcode.width(), 12);
        assert_eq!(Field::ALL.len(), 18);
    }

    #[test]
    fn grouped_charge_layout_matches_field_widths() {
        for (i, f) in Field::ALL.iter().enumerate() {
            assert_eq!(FIELD_WIDTHS[i] as usize, f.width(), "width of {f}");
            assert_eq!(FIELD_MASKS[i], (1u128 << f.width()) - 1, "mask of {f}");
        }
        // Singles + the two groups partition the 18 fields and 144 bits.
        let singles_bits: usize = SINGLE_FIELDS.iter().map(|&i| Field::ALL[i].width()).sum();
        assert_eq!(
            GROUP_WIDTHS[0] + GROUP_WIDTHS[1] + singles_bits,
            slot_bits()
        );
        for &i in &SINGLE_FIELDS {
            assert_eq!(GROUP_OF[i], NO_GROUP);
            assert!(single_slot(i).is_some());
        }
        let n_members: usize = GROUP_MEMBERS.iter().map(|m| m.len()).sum();
        assert_eq!(n_members + SINGLE_FIELDS.len(), 18);
        // Offsets tile each group's word exactly, in member order.
        for (g, members) in GROUP_MEMBERS.iter().enumerate() {
            let mut acc = 0u32;
            for &i in *members {
                assert_eq!(GROUP_OF[i] as usize, g);
                assert_eq!(single_slot(i), None);
                assert_eq!(FIELD_OFFSETS[i], acc);
                acc += FIELD_WIDTHS[i];
            }
            assert_eq!(acc as usize, GROUP_WIDTHS[g]);
        }
    }

    #[test]
    fn grouped_charge_matches_per_field_record() {
        // Drive a 1-slot scheduler through allocate/issue/release twice and
        // check the post-sync integers against a hand computation — i.e.
        // that the grouped concatenated charge drains into exactly what
        // direct per-field `record` calls would have produced.
        let mut s = Scheduler::new(1, 4);
        let usage = DataUsage {
            src1: true,
            src2: true,
            imm: true,
        };
        let slot = s.allocate(&entry(), usage, 5).unwrap();
        s.issue(slot, 8);
        s.release(slot, 12);
        let slot2 = s.allocate(&entry(), usage, 20).unwrap();
        assert_eq!(slot, slot2);
        s.release(slot2, 30);
        s.sync(40);
        // Valid holds 0 over [0,5), [12,20) and [30,40) (release writes 0),
        // 1 elsewhere: zero-time 5 + 8 + 10 = 23 of 40.
        let v = s.field_residency(Field::Valid);
        assert_eq!(v.zero_cycles(0), 23);
        assert_eq!(v.total_time(), 40);
        // Latency (value 3 = 0b00011) is written at t=5; the second
        // allocation re-drives the same value (no charge, span stays open).
        // Bit 0 is zero only over [0,5); bit 4 over the whole run.
        let l = s.field_residency(Field::Latency);
        assert_eq!(l.zero_cycles(0), 5);
        assert_eq!(l.zero_cycles(4), 40);
        assert_eq!(l.total_time(), 40);
    }

    #[test]
    fn entry_values_capture_uop_fields() {
        let e = entry();
        assert_eq!(e.get(Field::Valid), 1);
        assert_eq!(e.get(Field::Latency), 3);
        assert_eq!(e.get(Field::Port), 1); // port 0 one-hot
        assert_eq!(e.get(Field::DstTag), 10);
        assert_eq!(e.get(Field::Ready1), 1);
        assert_eq!(e.get(Field::Ready2), 0);
        assert_eq!(e.get(Field::Flags), 0b10);
    }

    #[test]
    fn allocate_issue_release_lifecycle() {
        let mut s = Scheduler::new(4, 2);
        let slot = s
            .allocate(
                &entry(),
                DataUsage {
                    src1: true,
                    src2: true,
                    imm: false,
                },
                0,
            )
            .unwrap();
        assert!(s.is_busy(slot));
        assert!(!s.is_issued(slot));
        s.issue(slot, 5);
        assert!(s.is_issued(slot));
        s.release(slot, 8);
        assert!(!s.is_busy(slot));
        // Contents remain after release (bit cells do not forget).
        assert_eq!(s.field_value(slot, Field::Latency), 3);
        // But the valid bit dropped.
        assert_eq!(s.field_value(slot, Field::Valid), 0);
    }

    #[test]
    fn full_scheduler_rejects_allocation() {
        let mut s = Scheduler::new(2, 4);
        let all = DataUsage {
            src1: true,
            src2: true,
            imm: true,
        };
        assert!(s.allocate(&entry(), all, 0).is_some());
        assert!(s.allocate(&entry(), all, 0).is_some());
        assert!(s.allocate(&entry(), all, 0).is_none());
    }

    #[test]
    fn occupancy_and_data_occupancy_diverge_after_issue() {
        let mut s = Scheduler::new(2, 4);
        let usage = DataUsage {
            src1: true,
            src2: false,
            imm: false,
        };
        let slot = s.allocate(&entry(), usage, 0).unwrap();
        s.issue(slot, 10);
        s.release(slot, 20);
        // Slot busy for 20 of 40 entry-cycles → occupancy 50%.
        assert!((s.occupancy(20) - 0.5).abs() < 1e-12);
        // One of six data-field units busy for 10 of 20 cycles → 1/12.
        assert!((s.data_occupancy(20) - 10.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn ports_shared_between_alloc_and_balancing() {
        let mut s = Scheduler::new(8, 2);
        let _ = s.allocate(&entry(), DataUsage::default(), 0).unwrap();
        assert!(s.consume_port(0));
        assert!(!s.consume_port(0), "both ports used");
        assert!(s.consume_port(1), "budget resets next cycle");
    }

    #[test]
    fn write_field_masks_to_width() {
        let mut s = Scheduler::new(1, 1);
        s.write_field(0, Field::Tos, 0xFF, 0);
        assert_eq!(s.field_value(0, Field::Tos), 0x7);
    }

    #[test]
    fn residency_accounts_field_contents() {
        let mut s = Scheduler::new(1, 1);
        let slot = s.allocate(&entry(), DataUsage::default(), 0).unwrap();
        s.release(slot, 10);
        s.sync(20);
        // Valid held 1 over [0,10) and 0 over [10,20): bias 0.5.
        let bias = s.field_residency(Field::Valid).bias(0).fraction();
        assert!((bias - 0.5).abs() < 1e-12);
    }

    #[test]
    fn free_slots_enumerates() {
        let mut s = Scheduler::new(3, 4);
        let a = s.allocate(&entry(), DataUsage::default(), 0).unwrap();
        let free: Vec<_> = s.free_slots().collect();
        assert_eq!(free.len(), 2);
        assert!(!free.contains(&a));
    }

    #[test]
    #[should_panic(expected = "releasing free slot")]
    fn double_release_panics() {
        let mut s = Scheduler::new(1, 1);
        let slot = s.allocate(&entry(), DataUsage::default(), 0).unwrap();
        s.release(slot, 1);
        s.release(slot, 2);
    }

    #[test]
    fn field_index_is_declaration_order() {
        for (i, f) in Field::ALL.iter().enumerate() {
            assert_eq!(f.index(), i, "{f} out of Table 2 order");
        }
    }

    #[test]
    fn same_value_writes_defer_residency_exactly() {
        let mut a = Scheduler::new(1, 1);
        let mut b = Scheduler::new(1, 1);
        let slot_a = a.allocate(&entry(), DataUsage::default(), 0).unwrap();
        let slot_b = b.allocate(&entry(), DataUsage::default(), 0).unwrap();
        // Same value re-driven repeatedly on `a`; written once on `b`.
        for t in 1..50 {
            a.write_field(slot_a, Field::Flags, 0b10, t);
        }
        a.write_field(slot_a, Field::Flags, 0b01, 50);
        b.write_field(slot_b, Field::Flags, 0b01, 50);
        a.sync(80);
        b.sync(80);
        assert_eq!(
            a.field_residency(Field::Flags),
            b.field_residency(Field::Flags)
        );
    }

    #[test]
    fn field_metadata() {
        assert!(Field::Src1Data.is_data());
        assert!(!Field::Flags.is_data());
        assert!(Field::MobId.is_self_balanced());
        assert!(!Field::Valid.is_self_balanced());
        assert_eq!(Field::MobId.to_string(), "MOB id");
    }
}
