//! Event-driven per-bit zero-residency accounting.
//!
//! Storage structures age per *bit cell*: a cell storing "0" stresses one
//! PMOS of the cross-coupled pair, storing "1" stresses the other. What
//! matters is the fraction of time each bit position holds "0" (the bias of
//! Figures 6 and 8). Tracking this per cycle would be prohibitive, so
//! accounting is event-driven: a [`TrackedWord`] remembers the value and the
//! time it was written, and charges `(now − since) × zero-mask` into a
//! [`BitResidency`] when the value changes.

use nbti_model::duty::Duty;

/// Aggregated per-bit zero-time for words of a fixed width.
///
/// Residency from many entries of a structure can be merged into one
/// `BitResidency` (bias is reported per bit *position*, as in the paper's
/// figures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitResidency {
    zero_time: Vec<u64>,
    total_time: u64,
}

impl BitResidency {
    /// Creates an accumulator for `width`-bit words (at most 128).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 128.
    pub fn new(width: usize) -> Self {
        assert!((1..=128).contains(&width), "width must be in 1..=128");
        BitResidency {
            zero_time: vec![0; width],
            total_time: 0,
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.zero_time.len()
    }

    /// Records that `value` was held for `duration` cycles.
    pub fn record(&mut self, value: u128, duration: u64) {
        if duration == 0 {
            return;
        }
        for (i, zt) in self.zero_time.iter_mut().enumerate() {
            if (value >> i) & 1 == 0 {
                *zt += duration;
            }
        }
        self.total_time += duration;
    }

    /// Total observed time (per bit position).
    pub fn total_time(&self) -> u64 {
        self.total_time
    }

    /// Bias towards "0" of one bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn bias(&self, bit: usize) -> Duty {
        if self.total_time == 0 {
            return Duty::ZERO;
        }
        Duty::saturating(self.zero_time[bit] as f64 / self.total_time as f64)
    }

    /// Biases of all bit positions, LSB first.
    pub fn biases(&self) -> Vec<Duty> {
        (0..self.width()).map(|i| self.bias(i)).collect()
    }

    /// The worst *cell* duty over all bit positions: each cell ages at
    /// `max(bias, 1 − bias)` because of the complementary PMOS pair.
    pub fn worst_cell_duty(&self) -> Duty {
        self.biases()
            .into_iter()
            .map(Duty::cell_worst)
            .fold(Duty::ZERO, |w, d| if d > w { d } else { w })
    }

    /// Merges another accumulator of the same width into this one.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &BitResidency) {
        assert_eq!(self.width(), other.width(), "width mismatch");
        for (a, b) in self.zero_time.iter_mut().zip(&other.zero_time) {
            *a += b;
        }
        self.total_time += other.total_time;
    }
}

/// One stored word plus the time it was last written; the unit of
/// event-driven accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackedWord {
    value: u128,
    since: u64,
}

impl TrackedWord {
    /// Creates a word holding `value` from time `now` on.
    pub fn new(value: u128, now: u64) -> Self {
        TrackedWord { value, since: now }
    }

    /// The currently stored value.
    pub fn value(&self) -> u128 {
        self.value
    }

    /// Time of the last write.
    pub fn since(&self) -> u64 {
        self.since
    }

    /// Writes a new value at time `now`, charging the elapsed residency of
    /// the old value into `residency`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if time runs backwards.
    pub fn write(&mut self, value: u128, now: u64, residency: &mut BitResidency) {
        debug_assert!(now >= self.since, "time ran backwards");
        residency.record(self.value, now - self.since);
        self.value = value;
        self.since = now;
    }

    /// Charges residency up to `now` without changing the value (used when
    /// taking a measurement).
    pub fn flush(&mut self, now: u64, residency: &mut BitResidency) {
        debug_assert!(now >= self.since, "time ran backwards");
        residency.record(self.value, now - self.since);
        self.since = now;
    }
}

/// Event-driven occupancy accounting for a structure with a fixed number of
/// entries.
///
/// Tracks the time-integral of the busy-entry count; the paper's
/// occupancy/free-time statistics (integer registers free 54% of the time,
/// scheduler occupancy 63%, ...) are read from this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyTracker {
    capacity: u64,
    busy: u64,
    last: u64,
    busy_time: u128,
    started: u64,
}

impl OccupancyTracker {
    /// Creates a tracker for a structure with `capacity` entries, starting
    /// at time `now` with everything free.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: u64, now: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        OccupancyTracker {
            capacity,
            busy: 0,
            last: now,
            busy_time: 0,
            started: now,
        }
    }

    fn advance(&mut self, now: u64) {
        debug_assert!(now >= self.last, "time ran backwards");
        self.busy_time += u128::from(self.busy) * u128::from(now - self.last);
        self.last = now;
    }

    /// Notes that one entry became busy at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if all entries are already busy.
    pub fn acquire(&mut self, now: u64) {
        self.advance(now);
        assert!(self.busy < self.capacity, "occupancy overflow");
        self.busy += 1;
    }

    /// Notes that one entry became free at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if no entry is busy.
    pub fn release(&mut self, now: u64) {
        self.advance(now);
        assert!(self.busy > 0, "occupancy underflow");
        self.busy -= 1;
    }

    /// Entries currently busy.
    pub fn busy_now(&self) -> u64 {
        self.busy
    }

    /// Average fraction of entries busy up to time `now`.
    pub fn occupancy(&mut self, now: u64) -> Duty {
        self.advance(now);
        let span = u128::from(now - self.started) * u128::from(self.capacity);
        if span == 0 {
            return Duty::ZERO;
        }
        Duty::saturating(self.busy_time as f64 / span as f64)
    }

    /// Average fraction of entries free up to time `now`.
    pub fn free_fraction(&mut self, now: u64) -> Duty {
        self.occupancy(now).complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accounts_zero_bits() {
        let mut r = BitResidency::new(4);
        r.record(0b0101, 10);
        assert!((r.bias(0).fraction() - 0.0).abs() < 1e-12);
        assert!((r.bias(1).fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r.total_time(), 10);
    }

    #[test]
    fn bias_mixes_over_time() {
        let mut r = BitResidency::new(1);
        r.record(0, 3);
        r.record(1, 1);
        assert!((r.bias(0).fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn worst_cell_duty_is_symmetric() {
        let mut r = BitResidency::new(2);
        // bit0: always 1 (bias 0) → cell duty 1. bit1: balanced.
        r.record(0b01, 1);
        r.record(0b11, 1);
        assert!((r.bias(0).fraction() - 0.0).abs() < 1e-12);
        assert!((r.worst_cell_duty().fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tracked_word_event_driven_accounting() {
        let mut r = BitResidency::new(8);
        let mut w = TrackedWord::new(0xFF, 0);
        w.write(0x00, 40, &mut r); // held 0xFF for 40 cycles
        w.write(0x0F, 60, &mut r); // held 0x00 for 20 cycles
        w.flush(100, &mut r); // held 0x0F for 40 cycles
        assert_eq!(r.total_time(), 100);
        // bit 0: one for 40 + 40, zero for 20 → bias 0.2.
        assert!((r.bias(0).fraction() - 0.2).abs() < 1e-12);
        // bit 7: one for 40, zero for 60 → bias 0.6.
        assert!((r.bias(7).fraction() - 0.6).abs() < 1e-12);
        assert_eq!(w.value(), 0x0F);
        assert_eq!(w.since(), 100);
    }

    #[test]
    fn merge_adds_observations() {
        let mut a = BitResidency::new(2);
        a.record(0b00, 10);
        let mut b = BitResidency::new(2);
        b.record(0b11, 10);
        a.merge(&b);
        assert!((a.bias(0).fraction() - 0.5).abs() < 1e-12);
        assert_eq!(a.total_time(), 20);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_width_mismatch() {
        let mut a = BitResidency::new(2);
        let b = BitResidency::new(3);
        a.merge(&b);
    }

    #[test]
    fn zero_duration_is_a_noop() {
        let mut r = BitResidency::new(1);
        r.record(0, 0);
        assert_eq!(r.total_time(), 0);
        assert_eq!(r.bias(0), Duty::ZERO);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        let _ = BitResidency::new(0);
    }

    #[test]
    fn biases_returns_all_positions() {
        let mut r = BitResidency::new(3);
        r.record(0b010, 1);
        let biases = r.biases();
        assert_eq!(biases.len(), 3);
        assert!((biases[1].fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_integrates_busy_time() {
        let mut occ = OccupancyTracker::new(4, 0);
        occ.acquire(0); // 1 busy over [0, 10)
        occ.acquire(10); // 2 busy over [10, 20)
        occ.release(20); // 1 busy over [20, 40)
                         // busy integral = 10 + 20 + 20 = 50 entry-cycles of 160 possible.
        assert!((occ.occupancy(40).fraction() - 50.0 / 160.0).abs() < 1e-12);
        assert!((occ.free_fraction(40).fraction() - 110.0 / 160.0).abs() < 1e-12);
        assert_eq!(occ.busy_now(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn occupancy_release_underflow_panics() {
        let mut occ = OccupancyTracker::new(1, 0);
        occ.release(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn occupancy_acquire_overflow_panics() {
        let mut occ = OccupancyTracker::new(1, 0);
        occ.acquire(0);
        occ.acquire(1);
    }
}
