//! Event-driven per-bit zero-residency accounting.
//!
//! Storage structures age per *bit cell*: a cell storing "0" stresses one
//! PMOS of the cross-coupled pair, storing "1" stresses the other. What
//! matters is the fraction of time each bit position holds "0" (the bias of
//! Figures 6 and 8). Tracking this per cycle would be prohibitive, so
//! accounting is event-driven: a [`TrackedWord`] remembers the value and the
//! time it was written, and charges `(now − since) × zero-mask` into a
//! [`BitResidency`] when the value changes.
//!
//! # The word-parallel kernel
//!
//! Charging an event used to walk every bit position — up to 128 scalar
//! iterations per write — which made `record` the hottest loop in the
//! simulator. [`BitResidency`] now accumulates events in *bit-sliced
//! carry-save planes*: `planes[j]` is a `u128` whose bit `i` contributes
//! `2^j` cycles to bit position `i`'s zero-count. Adding `(mask, duration)`
//! ripple-carries the zero-mask once per set bit of `duration`, so the cost
//! is O(popcount(duration) + carry chain) *word* operations regardless of
//! width. Planes drain into the exact `zero_time` lanes via an
//! integer-only [`flush_planes`](BitResidency::flush_planes) before any
//! lane can overflow, so `bias()`/`merge()`/reports see the same integers
//! the scalar loop produced — byte-identical, not approximately equal.
//!
//! [`ScalarResidency`] keeps the original per-bit loop alive as a reference
//! oracle; the differential property suite (`tests/bitstats_prop.rs`) and
//! the `bitstats_record` microbench compare the two implementations
//! event-for-event.

use nbti_model::duty::Duty;

/// Number of carry-save planes; per-bit pending counts fit in `PLANES` bits.
const PLANES: usize = 32;

/// Maximum duration the planes may accumulate before a flush is forced.
/// With `PLANES = 32` every per-bit pending count stays below `2^32`, so a
/// ripple carry can never run off the last plane.
const PLANE_CAPACITY: u64 = (1 << PLANES) - 1;

/// Aggregated per-bit zero-time for words of a fixed width.
///
/// Residency from many entries of a structure can be merged into one
/// `BitResidency` (bias is reported per bit *position*, as in the paper's
/// figures).
#[derive(Debug, Clone)]
pub struct BitResidency {
    /// Exact zero-cycles per bit position, LSB first (flushed state).
    zero_time: Vec<u64>,
    /// Bit-sliced carry-save accumulator: bit `i` of `planes[j]` adds
    /// `2^j` pending zero-cycles to position `i`.
    planes: [u128; PLANES],
    /// Total duration absorbed into `planes` since the last flush;
    /// bounded by [`PLANE_CAPACITY`].
    pending: u64,
    /// Mask selecting the low `width` bits.
    mask: u128,
    total_time: u64,
}

/// Mask with the low `width` bits set (`width` in 1..=128).
fn width_mask(width: usize) -> u128 {
    if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

impl BitResidency {
    /// Creates an accumulator for `width`-bit words (at most 128).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 128.
    pub fn new(width: usize) -> Self {
        assert!((1..=128).contains(&width), "width must be in 1..=128");
        BitResidency {
            zero_time: vec![0; width],
            planes: [0; PLANES],
            pending: 0,
            mask: width_mask(width),
            total_time: 0,
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.zero_time.len()
    }

    /// Records that `value` was held for `duration` cycles.
    ///
    /// Word-parallel: the zero-mask is ripple-carried into the bit-sliced
    /// planes once per set bit of `duration` instead of once per bit
    /// position.
    pub fn record(&mut self, value: u128, duration: u64) {
        if duration == 0 {
            return;
        }
        self.total_time += duration;
        let zeros = !value & self.mask;
        if zeros == 0 {
            // All-ones value: no zero-time accrues anywhere. Balancing
            // schemes hold most protected fields at all-ones, so this is
            // the common case on the release path.
            return;
        }
        // Cost model: the lane path costs one addition per *set* bit of the
        // zero-mask (iterated sparsely below); the carry-save path costs
        // ~2 word ops per set bit of `duration` (ripple chains average
        // under two planes). Sparse zero-masks and dense durations go
        // straight to the lanes — which is also the only valid path for a
        // single event too large for the planes (~4 billion cycles). Lane
        // adds and plane adds produce the same integers, so the choice is
        // invisible to every reader.
        let lane_is_cheaper = zeros.count_ones() < 2 * duration.count_ones();
        if lane_is_cheaper || duration > PLANE_CAPACITY {
            let mut z = zeros;
            while z != 0 {
                let i = z.trailing_zeros() as usize;
                z &= z - 1;
                self.zero_time[i] += duration;
            }
            return;
        }
        if duration > PLANE_CAPACITY - self.pending {
            self.flush_planes();
        }
        self.pending += duration;
        let mut weight = duration;
        while weight != 0 {
            let bit = weight.trailing_zeros() as usize;
            weight &= weight - 1;
            // Carry-save add of `zeros` with weight 2^bit: XOR is the sum,
            // AND the carry into the next plane. `pending <= PLANE_CAPACITY`
            // guarantees the carry dies before running off the last plane.
            let mut carry = zeros;
            let mut plane = bit;
            while carry != 0 {
                debug_assert!(plane < PLANES, "carry escaped the planes");
                let overflow = self.planes[plane] & carry;
                self.planes[plane] ^= carry;
                carry = overflow;
                plane += 1;
            }
        }
    }

    /// Records a closed-form span: `value` held for the `duration` cycles
    /// of an idle/stall region the simulator skipped over in one step.
    ///
    /// This is the bulk-advance entry point of the event-driven core; it is
    /// exactly [`BitResidency::record`] (the kernel has always been
    /// span-based — one event of `n` cycles costs O(popcount(n)), not
    /// O(n)), named explicitly so span-application sites read as such.
    pub fn record_span(&mut self, value: u128, duration: u64) {
        self.record(value, duration);
    }

    /// Charges `duration` zero-cycles to every bit set in `zeros`, without
    /// touching `total_time`.
    ///
    /// This is the carrier half of the *grouped charge* protocol: several
    /// fields whose values changed at the same instant concatenate their
    /// zero-masks into one word and pay a single plane-add here instead of
    /// one `record` each. The owner later moves the accumulated counts into
    /// the real per-field accumulators with
    /// [`drain_zero_counts`](Self::drain_zero_counts) /
    /// [`credit_zero_cycles`](Self::credit_zero_cycles) and accounts
    /// `total_time` separately via
    /// [`credit_total_time`](Self::credit_total_time) — the resulting
    /// integers are identical to per-field `record` calls.
    pub(crate) fn record_zeros(&mut self, zeros: u128, duration: u64) {
        if duration == 0 || zeros == 0 {
            return;
        }
        debug_assert_eq!(zeros & !self.mask, 0, "zeros outside the word");
        let lane_is_cheaper = zeros.count_ones() < 2 * duration.count_ones();
        if lane_is_cheaper || duration > PLANE_CAPACITY {
            let mut z = zeros;
            while z != 0 {
                let i = z.trailing_zeros() as usize;
                z &= z - 1;
                self.zero_time[i] += duration;
            }
            return;
        }
        if duration > PLANE_CAPACITY - self.pending {
            self.flush_planes();
        }
        self.pending += duration;
        let mut weight = duration;
        while weight != 0 {
            let bit = weight.trailing_zeros() as usize;
            weight &= weight - 1;
            let mut carry = zeros;
            let mut plane = bit;
            while carry != 0 {
                debug_assert!(plane < PLANES, "carry escaped the planes");
                let overflow = self.planes[plane] & carry;
                self.planes[plane] ^= carry;
                carry = overflow;
                plane += 1;
            }
        }
    }

    /// Moves every accumulated zero-count out of this accumulator, calling
    /// `f(bit, count)` for each nonzero lane and leaving the accumulator
    /// empty. Part of the grouped-charge protocol (see
    /// [`record_zeros`](Self::record_zeros)).
    pub(crate) fn drain_zero_counts(&mut self, mut f: impl FnMut(usize, u64)) {
        self.flush_planes();
        for (i, zt) in self.zero_time.iter_mut().enumerate() {
            if *zt != 0 {
                f(i, *zt);
                *zt = 0;
            }
        }
    }

    /// Adds externally accumulated zero-cycles to one bit position (the
    /// receiving half of the grouped-charge protocol).
    pub(crate) fn credit_zero_cycles(&mut self, bit: usize, count: u64) {
        self.zero_time[bit] += count;
    }

    /// Adds observed time without charging any bit (the grouped charge
    /// accounts zero-time and total-time separately).
    pub(crate) fn credit_total_time(&mut self, duration: u64) {
        self.total_time += duration;
    }

    /// Takes the accumulated total time, leaving zero. A group-charge
    /// accumulator's span time covers every member field, so the owner
    /// credits it to each of them at drain and resets the staging count.
    pub(crate) fn take_total_time(&mut self) -> u64 {
        std::mem::take(&mut self.total_time)
    }

    /// Drains the carry-save planes into the exact `zero_time` lanes.
    ///
    /// Integer-only, so the lane values are identical to what the scalar
    /// per-bit loop would have produced. O(width × planes), but amortized
    /// away: it runs once per ~2^32 accumulated cycles (or on merge).
    fn flush_planes(&mut self) {
        if self.pending == 0 {
            return;
        }
        for (i, zt) in self.zero_time.iter_mut().enumerate() {
            let mut count = 0u64;
            for (j, plane) in self.planes.iter().enumerate() {
                count |= (((plane >> i) as u64) & 1) << j;
            }
            *zt += count;
        }
        self.planes = [0; PLANES];
        self.pending = 0;
    }

    /// Exact zero-cycles of one bit position, including pending plane state.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn zero_cycles(&self, bit: usize) -> u64 {
        let mut count = self.zero_time[bit];
        if self.pending != 0 {
            for (j, plane) in self.planes.iter().enumerate() {
                count += (((plane >> bit) as u64) & 1) << j;
            }
        }
        count
    }

    /// Total observed time (per bit position).
    pub fn total_time(&self) -> u64 {
        self.total_time
    }

    /// Bias towards "0" of one bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn bias(&self, bit: usize) -> Duty {
        if self.total_time == 0 {
            return Duty::ZERO;
        }
        Duty::saturating(self.zero_cycles(bit) as f64 / self.total_time as f64)
    }

    /// Biases of all bit positions, LSB first.
    pub fn biases(&self) -> Vec<Duty> {
        (0..self.width()).map(|i| self.bias(i)).collect()
    }

    /// The worst *cell* duty over all bit positions: each cell ages at
    /// `max(bias, 1 − bias)` because of the complementary PMOS pair.
    /// Allocation-free: telemetry samples this for every structure.
    pub fn worst_cell_duty(&self) -> Duty {
        (0..self.width())
            .map(|i| self.bias(i).cell_worst())
            .fold(Duty::ZERO, |w, d| if d > w { d } else { w })
    }

    /// Merges another accumulator of the same width into this one.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &BitResidency) {
        assert_eq!(self.width(), other.width(), "width mismatch");
        self.flush_planes();
        for (i, zt) in self.zero_time.iter_mut().enumerate() {
            *zt += other.zero_cycles(i);
        }
        self.total_time += other.total_time;
    }
}

/// Equality is over *effective* counts — two accumulators that charged the
/// same cycles compare equal regardless of how much is still pending in
/// their carry-save planes.
impl PartialEq for BitResidency {
    fn eq(&self, other: &Self) -> bool {
        self.width() == other.width()
            && self.total_time == other.total_time
            && (0..self.width()).all(|i| self.zero_cycles(i) == other.zero_cycles(i))
    }
}

impl Eq for BitResidency {}

/// The original per-bit scalar accounting loop, kept as a reference oracle.
///
/// This is the implementation [`BitResidency`] replaced: O(width) scalar
/// operations per event, trivially auditable. The differential property
/// suite drives both implementations with identical event streams and
/// demands exact integer agreement; the `bitstats_record` bench measures
/// the speedup against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarResidency {
    zero_time: Vec<u64>,
    total_time: u64,
}

impl ScalarResidency {
    /// Creates an accumulator for `width`-bit words (at most 128).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 128.
    pub fn new(width: usize) -> Self {
        assert!((1..=128).contains(&width), "width must be in 1..=128");
        ScalarResidency {
            zero_time: vec![0; width],
            total_time: 0,
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.zero_time.len()
    }

    /// Records that `value` was held for `duration` cycles (per-bit loop).
    pub fn record(&mut self, value: u128, duration: u64) {
        if duration == 0 {
            return;
        }
        for (i, zt) in self.zero_time.iter_mut().enumerate() {
            if (value >> i) & 1 == 0 {
                *zt += duration;
            }
        }
        self.total_time += duration;
    }

    /// Exact zero-cycles of one bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn zero_cycles(&self, bit: usize) -> u64 {
        self.zero_time[bit]
    }

    /// Total observed time (per bit position).
    pub fn total_time(&self) -> u64 {
        self.total_time
    }

    /// Bias towards "0" of one bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn bias(&self, bit: usize) -> Duty {
        if self.total_time == 0 {
            return Duty::ZERO;
        }
        Duty::saturating(self.zero_time[bit] as f64 / self.total_time as f64)
    }

    /// Biases of all bit positions, LSB first.
    pub fn biases(&self) -> Vec<Duty> {
        (0..self.width()).map(|i| self.bias(i)).collect()
    }

    /// The worst *cell* duty over all bit positions.
    pub fn worst_cell_duty(&self) -> Duty {
        self.biases()
            .into_iter()
            .map(Duty::cell_worst)
            .fold(Duty::ZERO, |w, d| if d > w { d } else { w })
    }

    /// Merges another accumulator of the same width into this one.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &ScalarResidency) {
        assert_eq!(self.width(), other.width(), "width mismatch");
        for (a, b) in self.zero_time.iter_mut().zip(&other.zero_time) {
            *a += b;
        }
        self.total_time += other.total_time;
    }
}

/// One stored word plus the time it was last written; the unit of
/// event-driven accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackedWord {
    value: u128,
    since: u64,
}

impl TrackedWord {
    /// Creates a word holding `value` from time `now` on.
    pub fn new(value: u128, now: u64) -> Self {
        TrackedWord { value, since: now }
    }

    /// The currently stored value.
    pub fn value(&self) -> u128 {
        self.value
    }

    /// Time of the last write.
    pub fn since(&self) -> u64 {
        self.since
    }

    /// Writes a new value at time `now`, charging the elapsed residency of
    /// the old value into `residency`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if time runs backwards.
    pub fn write(&mut self, value: u128, now: u64, residency: &mut BitResidency) {
        debug_assert!(now >= self.since, "time ran backwards");
        residency.record(self.value, now - self.since);
        self.value = value;
        self.since = now;
    }

    /// Charges residency up to `now` without changing the value (used when
    /// taking a measurement).
    pub fn flush(&mut self, now: u64, residency: &mut BitResidency) {
        debug_assert!(now >= self.since, "time ran backwards");
        residency.record(self.value, now - self.since);
        self.since = now;
    }
}

/// Event-driven occupancy accounting for a structure with a fixed number of
/// entries.
///
/// Tracks the time-integral of the busy-entry count; the paper's
/// occupancy/free-time statistics (integer registers free 54% of the time,
/// scheduler occupancy 63%, ...) are read from this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyTracker {
    capacity: u64,
    busy: u64,
    last: u64,
    busy_time: u128,
    started: u64,
}

impl OccupancyTracker {
    /// Creates a tracker for a structure with `capacity` entries, starting
    /// at time `now` with everything free.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: u64, now: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        OccupancyTracker {
            capacity,
            busy: 0,
            last: now,
            busy_time: 0,
            started: now,
        }
    }

    fn advance(&mut self, now: u64) {
        debug_assert!(now >= self.last, "time ran backwards");
        self.busy_time += u128::from(self.busy) * u128::from(now - self.last);
        self.last = now;
    }

    /// Busy-entry time integral as of `now`, without mutating the tracker.
    fn busy_time_at(&self, now: u64) -> u128 {
        debug_assert!(now >= self.last, "time ran backwards");
        self.busy_time + u128::from(self.busy) * u128::from(now - self.last)
    }

    /// Notes that one entry became busy at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if all entries are already busy.
    pub fn acquire(&mut self, now: u64) {
        self.advance(now);
        assert!(self.busy < self.capacity, "occupancy overflow");
        self.busy += 1;
    }

    /// Notes that one entry became free at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if no entry is busy.
    pub fn release(&mut self, now: u64) {
        self.advance(now);
        assert!(self.busy > 0, "occupancy underflow");
        self.busy -= 1;
    }

    /// Notes that `n` entries became busy at time `now` in one step: one
    /// integral advance instead of `n`, identical accounting (the integral
    /// only changes when time moves).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` entries are free.
    pub fn acquire_n(&mut self, n: u64, now: u64) {
        self.advance(now);
        assert!(self.busy + n <= self.capacity, "occupancy overflow");
        self.busy += n;
    }

    /// Notes that `n` entries became free at time `now` in one step.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` entries are busy.
    pub fn release_n(&mut self, n: u64, now: u64) {
        self.advance(now);
        assert!(self.busy >= n, "occupancy underflow");
        self.busy -= n;
    }

    /// Entries currently busy.
    pub fn busy_now(&self) -> u64 {
        self.busy
    }

    /// Average fraction of entries busy up to time `now`.
    pub fn occupancy(&mut self, now: u64) -> Duty {
        self.advance(now);
        self.occupancy_at(now)
    }

    /// Average fraction of entries busy up to time `now`, without mutating
    /// the tracker — the measurement peek for telemetry sampling, which
    /// must not perturb `last`.
    pub fn occupancy_at(&self, now: u64) -> Duty {
        let span = u128::from(now - self.started) * u128::from(self.capacity);
        if span == 0 {
            return Duty::ZERO;
        }
        Duty::saturating(self.busy_time_at(now) as f64 / span as f64)
    }

    /// Average fraction of entries free up to time `now`.
    pub fn free_fraction(&mut self, now: u64) -> Duty {
        self.occupancy(now).complement()
    }

    /// Non-mutating counterpart of [`free_fraction`](Self::free_fraction).
    pub fn free_fraction_at(&self, now: u64) -> Duty {
        self.occupancy_at(now).complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accounts_zero_bits() {
        let mut r = BitResidency::new(4);
        r.record(0b0101, 10);
        assert!((r.bias(0).fraction() - 0.0).abs() < 1e-12);
        assert!((r.bias(1).fraction() - 1.0).abs() < 1e-12);
        assert_eq!(r.total_time(), 10);
    }

    #[test]
    fn bias_mixes_over_time() {
        let mut r = BitResidency::new(1);
        r.record(0, 3);
        r.record(1, 1);
        assert!((r.bias(0).fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn worst_cell_duty_is_symmetric() {
        let mut r = BitResidency::new(2);
        // bit0: always 1 (bias 0) → cell duty 1. bit1: balanced.
        r.record(0b01, 1);
        r.record(0b11, 1);
        assert!((r.bias(0).fraction() - 0.0).abs() < 1e-12);
        assert!((r.worst_cell_duty().fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tracked_word_event_driven_accounting() {
        let mut r = BitResidency::new(8);
        let mut w = TrackedWord::new(0xFF, 0);
        w.write(0x00, 40, &mut r); // held 0xFF for 40 cycles
        w.write(0x0F, 60, &mut r); // held 0x00 for 20 cycles
        w.flush(100, &mut r); // held 0x0F for 40 cycles
        assert_eq!(r.total_time(), 100);
        // bit 0: one for 40 + 40, zero for 20 → bias 0.2.
        assert!((r.bias(0).fraction() - 0.2).abs() < 1e-12);
        // bit 7: one for 40, zero for 60 → bias 0.6.
        assert!((r.bias(7).fraction() - 0.6).abs() < 1e-12);
        assert_eq!(w.value(), 0x0F);
        assert_eq!(w.since(), 100);
    }

    #[test]
    fn merge_adds_observations() {
        let mut a = BitResidency::new(2);
        a.record(0b00, 10);
        let mut b = BitResidency::new(2);
        b.record(0b11, 10);
        a.merge(&b);
        assert!((a.bias(0).fraction() - 0.5).abs() < 1e-12);
        assert_eq!(a.total_time(), 20);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_width_mismatch() {
        let mut a = BitResidency::new(2);
        let b = BitResidency::new(3);
        a.merge(&b);
    }

    #[test]
    fn zero_duration_is_a_noop() {
        let mut r = BitResidency::new(1);
        r.record(0, 0);
        assert_eq!(r.total_time(), 0);
        assert_eq!(r.bias(0), Duty::ZERO);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        let _ = BitResidency::new(0);
    }

    #[test]
    fn biases_returns_all_positions() {
        let mut r = BitResidency::new(3);
        r.record(0b010, 1);
        let biases = r.biases();
        assert_eq!(biases.len(), 3);
        assert!((biases[1].fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn swar_matches_scalar_on_a_mixed_stream() {
        let mut swar = BitResidency::new(128);
        let mut scalar = ScalarResidency::new(128);
        let mut value = 0x0123_4567_89AB_CDEF_u128;
        for step in 0..200u64 {
            value = value.rotate_left(7) ^ u128::from(step).wrapping_mul(0x9E37_79B9);
            let duration = (step * step + 1) % 1009;
            swar.record(value, duration);
            scalar.record(value, duration);
        }
        assert_eq!(swar.total_time(), scalar.total_time());
        for bit in 0..128 {
            assert_eq!(swar.zero_cycles(bit), scalar.zero_cycles(bit), "bit {bit}");
        }
    }

    #[test]
    fn equality_ignores_plane_representation() {
        // Same effective counts via one large event vs many small ones:
        // the pending plane state differs, the accumulators must not.
        let mut one = BitResidency::new(8);
        one.record(0xA5, 1000);
        let mut many = BitResidency::new(8);
        for _ in 0..1000 {
            many.record(0xA5, 1);
        }
        assert_eq!(one, many);
    }

    #[test]
    fn plane_capacity_boundary_flushes_exactly() {
        // Crossing the 2^32−1 accumulation boundary forces a flush;
        // counts must remain exact on both sides.
        let mut r = BitResidency::new(2);
        r.record(0b10, PLANE_CAPACITY - 1);
        r.record(0b01, 3); // forces flush_planes, then re-accumulates
        assert_eq!(r.zero_cycles(0), PLANE_CAPACITY - 1);
        assert_eq!(r.zero_cycles(1), 3);
        assert_eq!(r.total_time(), PLANE_CAPACITY + 2);
    }

    #[test]
    fn oversized_single_event_takes_the_lane_path() {
        let mut r = BitResidency::new(2);
        let huge = PLANE_CAPACITY + 17;
        r.record(0b01, huge);
        assert_eq!(r.zero_cycles(0), 0);
        assert_eq!(r.zero_cycles(1), huge);
        assert_eq!(r.total_time(), huge);
        // And the planes still work afterwards.
        r.record(0b10, 5);
        assert_eq!(r.zero_cycles(0), 5);
        assert_eq!(r.zero_cycles(1), huge);
    }

    #[test]
    fn merge_absorbs_pending_planes_from_both_sides() {
        let mut a = BitResidency::new(4);
        a.record(0b0011, 7);
        let mut b = BitResidency::new(4);
        b.record(0b1100, 9);
        a.merge(&b);
        let mut oracle = ScalarResidency::new(4);
        oracle.record(0b0011, 7);
        oracle.record(0b1100, 9);
        for bit in 0..4 {
            assert_eq!(a.zero_cycles(bit), oracle.zero_cycles(bit));
        }
    }

    #[test]
    fn occupancy_integrates_busy_time() {
        let mut occ = OccupancyTracker::new(4, 0);
        occ.acquire(0); // 1 busy over [0, 10)
        occ.acquire(10); // 2 busy over [10, 20)
        occ.release(20); // 1 busy over [20, 40)
                         // busy integral = 10 + 20 + 20 = 50 entry-cycles of 160 possible.
        assert!((occ.occupancy(40).fraction() - 50.0 / 160.0).abs() < 1e-12);
        assert!((occ.free_fraction(40).fraction() - 110.0 / 160.0).abs() < 1e-12);
        assert_eq!(occ.busy_now(), 1);
    }

    #[test]
    fn occupancy_peek_matches_the_advancing_read() {
        let mut occ = OccupancyTracker::new(4, 0);
        occ.acquire(0);
        occ.acquire(10);
        occ.release(20);
        let snapshot = occ;
        let peeked = occ.occupancy_at(40);
        assert_eq!(occ, snapshot, "occupancy_at must not mutate");
        let advanced = occ.occupancy(40);
        assert_eq!(peeked, advanced);
        assert_eq!(occ.free_fraction_at(40), peeked.complement());
        // Peeking between events does not disturb later accounting.
        let mut a = OccupancyTracker::new(2, 0);
        let mut b = OccupancyTracker::new(2, 0);
        a.acquire(0);
        b.acquire(0);
        let _ = a.occupancy_at(5);
        a.release(10);
        b.release(10);
        assert_eq!(a.occupancy(20), b.occupancy(20));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn occupancy_release_underflow_panics() {
        let mut occ = OccupancyTracker::new(1, 0);
        occ.release(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn occupancy_acquire_overflow_panics() {
        let mut occ = OccupancyTracker::new(1, 0);
        occ.acquire(0);
        occ.acquire(1);
    }
}
