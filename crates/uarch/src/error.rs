//! Typed configuration errors for the pipeline and its structures.
//!
//! [`crate::pipeline::Pipeline::try_new`] validates a
//! [`crate::pipeline::PipelineConfig`] before any structure is built, so a
//! degenerate geometry (zero-capacity cache, register file smaller than
//! the architectural state, portless scheduler) surfaces as a
//! [`PipelineError`] instead of a panic or a hang deep inside a run.

use crate::cache::CacheConfig;
use crate::regfile::RegFileConfig;

/// Why a pipeline configuration cannot be instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// `alloc_width` is zero: the front-end could never make progress.
    ZeroAllocWidth,
    /// The scheduler has no entries.
    NoSchedulerEntries,
    /// The scheduler has no allocation ports.
    NoSchedulerPorts,
    /// A register file cannot hold the pre-mapped architectural registers
    /// (16 integer, 8 FP) plus at least one renaming register.
    RegFileTooSmall {
        /// "integer" or "FP".
        class: &'static str,
        /// Configured physical entries.
        entries: u16,
        /// Minimum required entries.
        required: u16,
    },
    /// A register file parameter is degenerate (width or ports).
    BadRegFile {
        /// "integer" or "FP".
        class: &'static str,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A cache-like structure has an unusable geometry.
    BadCacheGeometry {
        /// Which structure ("DL0", "L2", "DTLB", "BTB").
        structure: &'static str,
        /// What is wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::ZeroAllocWidth => {
                write!(f, "alloc_width is zero: the pipeline cannot make progress")
            }
            PipelineError::NoSchedulerEntries => write!(f, "scheduler has no entries"),
            PipelineError::NoSchedulerPorts => write!(f, "scheduler has no allocation ports"),
            PipelineError::RegFileTooSmall {
                class,
                entries,
                required,
            } => write!(
                f,
                "{class} register file has {entries} entries but needs at least {required} \
                 (architectural state plus one renaming register)"
            ),
            PipelineError::BadRegFile { class, reason } => {
                write!(f, "{class} register file: {reason}")
            }
            PipelineError::BadCacheGeometry { structure, reason } => {
                write!(f, "{structure}: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Validates one cache geometry.
pub fn validate_cache(structure: &'static str, config: &CacheConfig) -> Result<(), PipelineError> {
    let fail = |reason| Err(PipelineError::BadCacheGeometry { structure, reason });
    if config.line_bytes == 0 {
        return fail("zero line size");
    }
    if config.size_bytes == 0 {
        return fail("zero capacity");
    }
    if config.ways == 0 {
        return fail("zero associativity");
    }
    let lines = config.size_bytes / u64::from(config.line_bytes);
    if lines == 0 {
        return fail("capacity smaller than one line");
    }
    if !lines.is_multiple_of(u64::from(config.ways)) {
        return fail("lines do not divide evenly into ways");
    }
    Ok(())
}

/// Validates a register file configuration against the architectural
/// registers the pipeline pre-maps into it.
pub fn validate_regfile(
    class: &'static str,
    config: &RegFileConfig,
    arch_regs: u16,
) -> Result<(), PipelineError> {
    if config.width == 0 || config.width > 128 {
        return Err(PipelineError::BadRegFile {
            class,
            reason: "width must be in 1..=128",
        });
    }
    if config.write_ports == 0 {
        return Err(PipelineError::BadRegFile {
            class,
            reason: "needs at least one write port",
        });
    }
    let required = arch_regs + 1;
    if config.entries < required {
        return Err(PipelineError::RegFileTooSmall {
            class,
            entries: config.entries,
            required,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_geometries_pass() {
        assert_eq!(validate_cache("DL0", &CacheConfig::dl0(32, 8)), Ok(()));
        assert_eq!(validate_cache("DTLB", &CacheConfig::dtlb(128, 8)), Ok(()));
        assert_eq!(
            validate_regfile("integer", &RegFileConfig::integer(), 16),
            Ok(())
        );
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let mut c = CacheConfig::dl0(32, 8);
        c.size_bytes = 0;
        assert!(matches!(
            validate_cache("DL0", &c),
            Err(PipelineError::BadCacheGeometry {
                structure: "DL0",
                ..
            })
        ));
    }

    #[test]
    fn non_dividing_ways_are_rejected() {
        let c = CacheConfig {
            size_bytes: 64 * 3,
            ways: 2,
            line_bytes: 64,
        };
        assert!(validate_cache("L2", &c).is_err());
    }

    #[test]
    fn undersized_regfile_is_rejected() {
        let c = RegFileConfig {
            entries: 16,
            width: 32,
            write_ports: 2,
        };
        let err = validate_regfile("integer", &c, 16).unwrap_err();
        assert!(err.to_string().contains("16 entries"));
    }

    #[test]
    fn errors_render_usable_messages() {
        let msgs = [
            PipelineError::ZeroAllocWidth.to_string(),
            PipelineError::NoSchedulerEntries.to_string(),
            PipelineError::NoSchedulerPorts.to_string(),
            PipelineError::BadCacheGeometry {
                structure: "BTB",
                reason: "zero capacity",
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
