//! Memory-order-buffer identifier allocation.
//!
//! Scheduler entries carry a 6-bit `MOB id` (Table 2). §4.5 observes that
//! MOB slots "are used evenly", so their bits are self-balanced and need no
//! protection — which this allocator reproduces by handing out ids in
//! circular order.

use crate::bitstats::BitResidency;

/// Circular MOB id allocator.
///
/// Id residency rides the word-parallel [`BitResidency`] kernel: each
/// allocation charges one `(id, 1)` event, a single carry-save add rather
/// than a per-bit loop.
#[derive(Debug, Clone)]
pub struct MobAllocator {
    capacity: u8,
    next: u8,
    in_use: u64,
    /// Residency of the id values handed out (for self-balance checks).
    residency: BitResidency,
}

impl MobAllocator {
    /// Creates an allocator with `capacity` slots (at most 64, to fit the
    /// 6-bit id field).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds 64.
    pub fn new(capacity: u8) -> Self {
        assert!((1..=64).contains(&capacity), "capacity must be in 1..=64");
        MobAllocator {
            capacity,
            next: 0,
            in_use: 0,
            residency: BitResidency::new(6),
        }
    }

    /// Allocates the next id in circular order, or `None` when all slots
    /// are busy.
    pub fn allocate(&mut self) -> Option<u8> {
        for probe in 0..self.capacity {
            let id = (self.next + probe) % self.capacity;
            if self.in_use & (1 << id) == 0 {
                self.in_use |= 1 << id;
                self.next = (id + 1) % self.capacity;
                self.residency.record(u128::from(id), 1);
                return Some(id);
            }
        }
        None
    }

    /// Releases a previously allocated id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not allocated.
    pub fn release(&mut self, id: u8) {
        assert!(self.in_use & (1 << id) != 0, "releasing a free MOB id {id}");
        self.in_use &= !(1 << id);
    }

    /// Number of slots currently in use.
    pub fn in_use_count(&self) -> u32 {
        self.in_use.count_ones()
    }

    /// Residency of handed-out id values (one sample per allocation).
    pub fn id_residency(&self) -> &BitResidency {
        &self.residency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order() {
        let mut mob = MobAllocator::new(4);
        assert_eq!(mob.allocate(), Some(0));
        assert_eq!(mob.allocate(), Some(1));
        mob.release(0);
        // Continues circularly rather than reusing 0 immediately.
        assert_eq!(mob.allocate(), Some(2));
        assert_eq!(mob.allocate(), Some(3));
        assert_eq!(mob.allocate(), Some(0));
        assert_eq!(mob.allocate(), None);
    }

    #[test]
    fn ids_are_self_balanced_in_the_long_run() {
        let mut mob = MobAllocator::new(64);
        for _ in 0..6400 {
            let id = mob.allocate().unwrap();
            mob.release(id);
        }
        // Every id used equally → every bit of the id field is balanced.
        for bit in 0..6 {
            let b = mob.id_residency().bias(bit).fraction();
            assert!((0.45..=0.55).contains(&b), "bit {bit} bias {b}");
        }
    }

    #[test]
    #[should_panic(expected = "free MOB id")]
    fn double_release_panics() {
        let mut mob = MobAllocator::new(4);
        let id = mob.allocate().unwrap();
        mob.release(id);
        mob.release(id);
    }

    #[test]
    fn in_use_count_tracks() {
        let mut mob = MobAllocator::new(8);
        assert_eq!(mob.in_use_count(), 0);
        let a = mob.allocate().unwrap();
        let _b = mob.allocate().unwrap();
        assert_eq!(mob.in_use_count(), 2);
        mob.release(a);
        assert_eq!(mob.in_use_count(), 1);
    }
}
