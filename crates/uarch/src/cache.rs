//! Set-associative caches with inversion-aware line states.
//!
//! Cache-like blocks (§3.2.1) evict entries on demand, so Penelope can keep
//! a fraction of the lines *invalid and inverted* to balance bit-cell aging.
//! This substrate provides everything the schemes need:
//!
//! - true-LRU replacement with hit-position statistics (the paper reports
//!   90% of DL0 hits at the MRU position for 32KB 8-way);
//! - a three-state line: valid, invalid, or **inverted** (invalid with
//!   complemented contents);
//! - a *shadow bit* per line ("would have been inverted"), used by the
//!   dynamic scheme to estimate induced extra misses without actually
//!   inverting (§3.2.1, implementation issues);
//! - time-accounting of the inverted fraction, from which the bias
//!   improvement of the cache's bit cells follows;
//! - word-parallel residency accounting of the per-line *valid bits*: the
//!   bits §3.2.1 singles out as the always-"1" aging hazard of a warm
//!   cache. Lines are packed 128 to a [`TrackedWord`], so a state change
//!   updates one word and charging an interval is a single SWAR
//!   [`BitResidency::record`] instead of a per-line loop.

use nbti_model::duty::Duty;

use crate::bitstats::{BitResidency, TrackedWord};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (= sets × ways × line size).
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u16,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheConfig {
    /// A first-level data cache (64-byte lines), `kb` kilobytes, given
    /// associativity. Table 3 uses 8, 16 and 32KB at 4 and 8 ways.
    pub fn dl0(kb: u32, ways: u16) -> Self {
        CacheConfig {
            size_bytes: u64::from(kb) * 1024,
            ways,
            line_bytes: 64,
        }
    }

    /// A data TLB with the given number of entries (4KB pages). Table 3
    /// uses 32, 64 and 128 entries, all 8-way.
    pub fn dtlb(entries: u32, ways: u16) -> Self {
        CacheConfig {
            size_bytes: u64::from(entries) * 4096,
            ways,
            line_bytes: 4096,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero or non-dividing sizes).
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / u64::from(self.line_bytes);
        assert!(lines > 0 && self.ways > 0, "degenerate cache geometry");
        assert!(
            lines.is_multiple_of(u64::from(self.ways)),
            "lines must divide evenly into ways"
        );
        (lines / u64::from(self.ways)) as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        (self.size_bytes / u64::from(self.line_bytes)) as usize
    }
}

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// No useful content.
    Invalid,
    /// Holds valid data.
    Valid,
    /// Invalid, holding the *inverted* image of its last contents for NBTI
    /// balancing. The valid/state bits encode this combination (§3.2.1).
    Inverted,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// Recency timestamp for LRU.
    lru: u64,
    /// "Would have been inverted" marker for the dynamic scheme's test
    /// phase.
    shadow: bool,
    /// When the line last entered the Inverted state.
    inverted_since: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            state: LineState::Invalid,
            lru: 0,
            shadow: false,
            inverted_since: 0,
        }
    }
}

/// Access/maintenance statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Hits per recency position (0 = MRU).
    pub hit_positions: Vec<u64>,
    /// Hits on shadow-marked lines (the dynamic scheme's induced-extra-miss
    /// estimate).
    pub shadow_hits: u64,
    /// Fills that reused an Inverted victim.
    pub inverted_refills: u64,
}

impl CacheStats {
    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Fraction of hits at recency position `pos`.
    pub fn hit_position_fraction(&self, pos: usize) -> f64 {
        if self.hits == 0 {
            return 0.0;
        }
        self.hit_positions.get(pos).copied().unwrap_or(0) as f64 / self.hits as f64
    }
}

/// Outcome of one access-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Set index accessed.
    pub set: usize,
    /// Way hit or filled.
    pub way: usize,
    /// Whether the fill consumed an Inverted line (LineFixed re-inverts
    /// elsewhere when this happens).
    pub refilled_inverted: bool,
    /// Whether the hit line carried the shadow mark.
    pub shadow_hit: bool,
}

/// Word-parallel residency accounting for the per-line valid bits.
///
/// Bit `i` of block `line / width` mirrors line `i`'s valid state; each
/// block pairs a [`TrackedWord`] with a [`BitResidency`], so the cost of a
/// state change is one word write and the residency charge rides the SWAR
/// kernel. The last block of a non-multiple geometry has unused high bits;
/// they stay 0 and are never read back.
#[derive(Debug, Clone)]
struct ValidBits {
    width: usize,
    lines: usize,
    words: Vec<TrackedWord>,
    residency: Vec<BitResidency>,
}

impl ValidBits {
    fn new(lines: usize) -> Self {
        let width = lines.min(128);
        let blocks = lines.div_ceil(width);
        ValidBits {
            width,
            lines,
            words: vec![TrackedWord::new(0, 0); blocks],
            residency: (0..blocks).map(|_| BitResidency::new(width)).collect(),
        }
    }

    fn set(&mut self, line: usize, valid: bool, now: u64) {
        let block = line / self.width;
        let bit = line % self.width;
        let old = self.words[block].value();
        let new = if valid {
            old | (1u128 << bit)
        } else {
            old & !(1u128 << bit)
        };
        if new != old {
            self.words[block].write(new, now, &mut self.residency[block]);
        }
    }

    fn sync(&mut self, now: u64) {
        for (word, residency) in self.words.iter_mut().zip(&mut self.residency) {
            word.flush(now, residency);
        }
    }

    fn zero_bias(&self, line: usize) -> Duty {
        self.residency[line / self.width].bias(line % self.width)
    }

    fn worst_cell_duty(&self) -> Duty {
        (0..self.lines)
            .map(|line| self.zero_bias(line).cell_worst())
            .fold(Duty::ZERO, |w, d| if d > w { d } else { w })
    }
}

/// A set-associative, write-allocate cache with true LRU.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    clock: u64,
    /// Accumulated line-cycles spent in the Inverted state.
    inverted_time: u128,
    /// Time accounting starts here.
    epoch: u64,
    /// Per-line valid-bit residency (word-parallel accounting).
    valid_bits: ValidBits,
    /// Running count of lines in the Valid state. Kept in step by
    /// [`SetAssocCache::set_line_state`] so the per-cycle scheme decisions
    /// and telemetry samples read a counter instead of scanning every line.
    valid_lines: usize,
    /// Running count of lines in the Inverted state (INVCOUNT).
    inverted_lines: usize,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        SetAssocCache {
            sets: vec![vec![Line::empty(); usize::from(config.ways)]; sets],
            stats: CacheStats {
                hit_positions: vec![0; usize::from(config.ways)],
                ..CacheStats::default()
            },
            clock: 0,
            inverted_time: 0,
            epoch: 0,
            valid_bits: ValidBits::new(config.lines()),
            valid_lines: 0,
            inverted_lines: 0,
            config,
        }
    }

    /// Flat line index of `(set, way)`.
    fn line_index(&self, set: usize, way: usize) -> usize {
        set * self.ways() + way
    }

    /// Transitions one line's state, keeping the valid-bit residency word
    /// in step. Every state change must go through here.
    fn set_line_state(&mut self, set: usize, way: usize, state: LineState, now: u64) {
        let line = self.line_index(set, way);
        let old = self.sets[set][way].state;
        if old != state {
            match old {
                LineState::Valid => self.valid_lines -= 1,
                LineState::Inverted => self.inverted_lines -= 1,
                LineState::Invalid => {}
            }
            match state {
                LineState::Valid => self.valid_lines += 1,
                LineState::Inverted => self.inverted_lines += 1,
                LineState::Invalid => {}
            }
        }
        self.sets[set][way].state = state;
        self.valid_bits.set(line, state == LineState::Valid, now);
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        usize::from(self.config.ways)
    }

    fn index_of(&self, addr: u64) -> (usize, u64) {
        let line = addr / u64::from(self.config.line_bytes);
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    fn charge_inversion_end(&mut self, set: usize, way: usize, now: u64) {
        let line = &self.sets[set][way];
        if line.state == LineState::Inverted {
            self.inverted_time += u128::from(now - line.inverted_since);
        }
    }

    /// Accesses `addr` at time `now`, filling on miss. Victim preference:
    /// invalid, then inverted, then LRU valid.
    pub fn access(&mut self, addr: u64, now: u64) -> AccessOutcome {
        self.clock = self.clock.max(now);
        let (set, tag) = self.index_of(addr);
        self.stats.accesses += 1;

        // Hit check among valid lines.
        let ways = self.ways();
        let hit_way = (0..ways)
            .find(|&w| self.sets[set][w].state == LineState::Valid && self.sets[set][w].tag == tag);
        if let Some(way) = hit_way {
            // Recency rank before the LRU update.
            let my_lru = self.sets[set][way].lru;
            let pos = (0..ways)
                .filter(|&w| {
                    w != way
                        && self.sets[set][w].state == LineState::Valid
                        && self.sets[set][w].lru > my_lru
                })
                .count();
            self.stats.hits += 1;
            self.stats.hit_positions[pos.min(ways - 1)] += 1;
            let shadow_hit = self.sets[set][way].shadow;
            if shadow_hit {
                self.stats.shadow_hits += 1;
            }
            self.sets[set][way].lru = self.bump_clock();
            return AccessOutcome {
                hit: true,
                set,
                way,
                refilled_inverted: false,
                shadow_hit,
            };
        }

        // Miss: choose a victim.
        let victim = self.victim_way(set);
        self.charge_inversion_end(set, victim, now);
        let refilled_inverted = self.sets[set][victim].state == LineState::Inverted;
        if refilled_inverted {
            self.stats.inverted_refills += 1;
        }
        let stamp = self.bump_clock();
        let line = &mut self.sets[set][victim];
        line.tag = tag;
        line.lru = stamp;
        line.shadow = false;
        self.set_line_state(set, victim, LineState::Valid, now);
        AccessOutcome {
            hit: false,
            set,
            way: victim,
            refilled_inverted,
            shadow_hit: false,
        }
    }

    fn bump_clock(&mut self) -> u64 {
        // Saturates at the far end of time: recency ties then resolve to
        // the lowest way, which is harmless.
        self.clock = self.clock.saturating_add(1);
        self.clock
    }

    #[allow(clippy::expect_used)] // config validation rejects zero ways
    fn victim_way(&self, set: usize) -> usize {
        let ways = &self.sets[set];
        if let Some(w) = ways.iter().position(|l| l.state == LineState::Invalid) {
            return w;
        }
        if let Some(w) = ways.iter().position(|l| l.state == LineState::Inverted) {
            return w;
        }
        ways.iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(w, _)| w)
            .expect("cache has at least one way")
    }

    /// The LRU *valid* way of a set, if any.
    pub fn lru_valid_way(&self, set: usize) -> Option<usize> {
        self.sets[set]
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state == LineState::Valid)
            .min_by_key(|(_, l)| l.lru)
            .map(|(w, _)| w)
    }

    /// Inverts (and invalidates) the LRU valid line of `set`. Returns the
    /// way, or `None` if the set has no valid line.
    pub fn invert_lru_line(&mut self, set: usize, now: u64) -> Option<usize> {
        let way = self.lru_valid_way(set)?;
        self.sets[set][way].inverted_since = now;
        self.set_line_state(set, way, LineState::Inverted, now);
        Some(way)
    }

    /// Inverts one line of `set`, preferring an *invalid* line (its stale
    /// contents are useless data already, §3.2.1, so inverting it costs
    /// nothing) and falling back to the LRU valid line. Returns the way, or
    /// `None` if the set holds neither.
    pub fn invert_line_in(&mut self, set: usize, now: u64) -> Option<usize> {
        if let Some(way) = self.sets[set]
            .iter()
            .position(|l| l.state == LineState::Invalid)
        {
            self.sets[set][way].inverted_since = now;
            self.set_line_state(set, way, LineState::Inverted, now);
            return Some(way);
        }
        self.invert_lru_line(set, now)
    }

    /// Marks the shadow bit of the LRU valid line of `set` (dynamic-scheme
    /// test phase). Returns the way, or `None`.
    pub fn shadow_mark_lru(&mut self, set: usize) -> Option<usize> {
        let way = self.sets[set]
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state == LineState::Valid && !l.shadow)
            .min_by_key(|(_, l)| l.lru)
            .map(|(w, _)| w)?;
        self.sets[set][way].shadow = true;
        Some(way)
    }

    /// Clears the shadow mark of one line.
    pub fn clear_shadow_mark(&mut self, set: usize, way: usize) {
        self.sets[set][way].shadow = false;
    }

    /// Clears all shadow marks.
    pub fn clear_shadow_marks(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.shadow = false;
            }
        }
    }

    /// Number of lines currently in the Inverted state (INVCOUNT). O(1):
    /// the count is maintained at every state transition, which turns the
    /// per-cycle scheme top-up check from a full line scan into a compare.
    pub fn inverted_count(&self) -> usize {
        self.inverted_lines
    }

    /// Number of currently valid lines. O(1), maintained per transition.
    pub fn valid_count(&self) -> usize {
        self.valid_lines
    }

    /// Number of currently invalid lines (neither valid nor inverted).
    pub fn invalid_count(&self) -> usize {
        self.config.lines() - self.valid_count() - self.inverted_count()
    }

    /// Instantaneous fraction of lines holding valid data.
    pub fn valid_fraction(&self) -> f64 {
        self.valid_count() as f64 / self.config.lines() as f64
    }

    /// Instantaneous fraction of lines in the Inverted state.
    pub fn inverted_fraction(&self) -> f64 {
        self.inverted_count() as f64 / self.config.lines() as f64
    }

    /// State of one line.
    pub fn line_state(&self, set: usize, way: usize) -> LineState {
        self.sets[set][way].state
    }

    /// Invalidates every line (used by rotation/flush events).
    pub fn invalidate_all(&mut self, now: u64) {
        for set in 0..self.set_count() {
            for way in 0..self.ways() {
                self.charge_inversion_end(set, way, now);
                self.sets[set][way].shadow = false;
                self.set_line_state(set, way, LineState::Invalid, now);
            }
        }
    }

    /// Average fraction of lines in the Inverted state over `[epoch, now]`.
    pub fn inverted_time_fraction(&self, now: u64) -> f64 {
        let span = u128::from(now.saturating_sub(self.epoch)) * self.config.lines() as u128;
        if span == 0 {
            return 0.0;
        }
        let mut total = self.inverted_time;
        for set in &self.sets {
            for line in set {
                if line.state == LineState::Inverted {
                    total += u128::from(now - line.inverted_since);
                }
            }
        }
        (total as f64 / span as f64).clamp(0.0, 1.0)
    }

    /// Flushes the valid-bit residency accounting up to `now`. Call before
    /// reading [`SetAssocCache::valid_bit_zero_bias`].
    pub fn sync_valid_bits(&mut self, now: u64) {
        self.valid_bits.sync(now);
    }

    /// Fraction of time the valid bit of line `(set, way)` held "0", up to
    /// the last [`SetAssocCache::sync_valid_bits`].
    pub fn valid_bit_zero_bias(&self, set: usize, way: usize) -> Duty {
        self.valid_bits.zero_bias(self.line_index(set, way))
    }

    /// Worst cell duty over all valid bits up to `now` — the §3.2.1 aging
    /// hazard: a warm cache holds its valid bits at "1" almost
    /// permanently, and an inverted/invalid line is the relief.
    pub fn worst_valid_cell_duty(&mut self, now: u64) -> Duty {
        self.valid_bits.sync(now);
        self.valid_bits.worst_cell_duty()
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears access statistics (not line states).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats {
            hit_positions: vec![0; self.ways()],
            ..CacheStats::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64B = 512B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::dl0(32, 8);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.lines(), 512);
        let t = CacheConfig::dtlb(128, 8);
        assert_eq!(t.sets(), 16);
        assert_eq!(t.lines(), 128);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x1000, 0).hit);
        assert!(c.access(0x1000, 1).hit);
        assert!(c.access(0x1020, 2).hit, "same 64B line");
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4*64 = 256B).
        let a = 0x0000;
        let b = 0x0400;
        let d = 0x0800;
        c.access(a, 0);
        c.access(b, 1);
        c.access(a, 2); // a is MRU now
        c.access(d, 3); // evicts b (LRU)
        assert!(c.access(a, 4).hit);
        assert!(!c.access(b, 5).hit, "b was evicted");
    }

    #[test]
    fn hit_position_statistics() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.access(0x0400, 1);
        // 0x0400 is MRU → hit position 0; 0x0000 is position 1.
        assert!(c.access(0x0400, 2).hit);
        assert!(c.access(0x0000, 3).hit);
        assert_eq!(c.stats().hit_positions[0], 1);
        assert_eq!(c.stats().hit_positions[1], 1);
        assert!((c.stats().hit_position_fraction(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverted_lines_are_preferred_victims_and_counted() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.access(0x0400, 1);
        let way = c.invert_lru_line(0, 2).unwrap();
        assert_eq!(c.line_state(0, way), LineState::Inverted);
        assert_eq!(c.inverted_count(), 1);
        // The inverted line no longer hits.
        assert!(!c.access(0x0000, 3).hit);
        // That fill reused the inverted way.
        assert_eq!(c.stats().inverted_refills, 1);
        assert_eq!(c.inverted_count(), 0);
    }

    #[test]
    fn invert_lru_picks_least_recent() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.access(0x0400, 1);
        c.access(0x0000, 2); // 0x0400 becomes LRU
        let way = c.invert_lru_line(0, 3).unwrap();
        // 0x0000 must still hit; 0x0400 was inverted.
        assert!(c.access(0x0000, 4).hit);
        assert!(!c.access(0x0400, 5).hit);
        let _ = way;
    }

    #[test]
    fn shadow_marks_count_would_be_misses() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.shadow_mark_lru(0).unwrap();
        let out = c.access(0x0000, 1);
        assert!(out.hit && out.shadow_hit);
        assert_eq!(c.stats().shadow_hits, 1);
        c.clear_shadow_marks();
        assert!(!c.access(0x0000, 2).shadow_hit);
    }

    #[test]
    fn inverted_time_fraction_integrates() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.invert_lru_line(0, 0).unwrap();
        // 1 of 8 lines inverted over [0, 80].
        let f = c.inverted_time_fraction(80);
        assert!((f - 1.0 / 8.0).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.invert_lru_line(0, 0);
        c.invalidate_all(10);
        assert_eq!(c.valid_count(), 0);
        assert_eq!(c.inverted_count(), 0);
    }

    #[test]
    fn valid_bit_residency_integrates_line_lifetimes() {
        let mut c = tiny();
        // Line (0, 0) fills at t=10 and stays valid: its valid bit is 0
        // over [0, 10) and 1 over [10, 40).
        c.access(0x0000, 10);
        c.sync_valid_bits(40);
        assert!((c.valid_bit_zero_bias(0, 0).fraction() - 0.25).abs() < 1e-12);
        // An untouched line's valid bit is 0 the whole time.
        assert!((c.valid_bit_zero_bias(3, 1).fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inversion_relieves_the_valid_bit() {
        let mut c = tiny();
        c.access(0x0000, 0);
        let way = c.invert_lru_line(0, 50).unwrap();
        c.sync_valid_bits(100);
        // Valid over [0, 50), inverted (bit 0) over [50, 100): bias 0.5.
        assert!((c.valid_bit_zero_bias(0, way).fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_valid_cell_duty_sees_never_valid_lines() {
        let mut c = tiny();
        c.access(0x0000, 0);
        // Untouched lines sit at "0" for the whole span → cell duty 1.
        assert!((c.worst_valid_cell_duty(100).fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn valid_bit_accounting_spans_multiple_blocks() {
        // 512 lines → four 128-bit blocks; the last line lives in the
        // last block's top bit.
        let mut c = SetAssocCache::new(CacheConfig::dl0(32, 8));
        let sets = c.set_count() as u64;
        let last_set = c.set_count() - 1;
        // Fill every way of the last set at t=0.
        for w in 0..8u64 {
            let addr = (last_set as u64 + w * sets) * 64;
            let out = c.access(addr, 0);
            assert_eq!(out.set, last_set);
        }
        c.sync_valid_bits(100);
        for w in 0..8 {
            assert!(
                c.valid_bit_zero_bias(last_set, w).fraction() < 1e-12,
                "way {w} was valid the whole span"
            );
        }
    }

    #[test]
    fn invalidate_all_charges_valid_time() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.invalidate_all(30);
        c.sync_valid_bits(60);
        // Valid over [0, 30), invalid over [30, 60).
        assert!((c.valid_bit_zero_bias(0, 0).fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn line_state_counters_match_scans() {
        let mut c = tiny();
        let scan = |c: &SetAssocCache, state: LineState| {
            c.sets.iter().flatten().filter(|l| l.state == state).count()
        };
        let addrs = [0x0000u64, 0x0400, 0x0040, 0x0440, 0x0080, 0x0480];
        for (t, &a) in addrs.iter().enumerate() {
            c.access(a, t as u64);
        }
        c.invert_lru_line(0, 10);
        c.invert_line_in(1, 11);
        c.access(0x0000, 12); // refills an inverted victim
        assert_eq!(c.valid_count(), scan(&c, LineState::Valid));
        assert_eq!(c.inverted_count(), scan(&c, LineState::Inverted));
        c.invalidate_all(20);
        assert_eq!(c.valid_count(), 0);
        assert_eq!(c.inverted_count(), 0);
        assert_eq!(c.invalid_count(), c.config().lines());
    }

    #[test]
    fn miss_ratio_reporting() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.access(0x0000, 1);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }
}
