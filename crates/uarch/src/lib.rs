//! Trace-driven microarchitectural substrates.
//!
//! The Penelope paper's evaluation runs on an IA32 trace-driven Intel
//! production simulator resembling the Core™ microarchitecture. This crate
//! is the reproduction's substitute: a compact out-of-order pipeline model
//! with the five structures the paper studies —
//!
//! - [`regfile`]: physical register files (integer and FP) with free-list
//!   allocation, write-port contention and per-bit residency tracking;
//! - [`scheduler`]: a 32-entry data-capture scheduler with the exact field
//!   layout of Table 2;
//! - [`cache`]: set-associative write-allocate caches with true-LRU
//!   replacement, line-state tracking (valid / inverted) and hit-position
//!   statistics;
//! - [`tlb`]: the data TLB, modeled as a small page-granular cache;
//! - [`btb`]: a branch target buffer (an extension beyond the paper's
//!   evaluated blocks; §3.2.1 lists the branch predictor as cache-like);
//! - [`mob`]: memory-order-buffer id allocation (self-balanced, §4.5);
//! - [`pipeline`]: the trace-driven pipeline tying everything together and
//!   reporting CPI, occupancies, port availability and adder utilization;
//! - [`bitstats`]: event-driven per-bit zero-residency accounting used by
//!   all storage structures.
//!
//! NBTI mitigation mechanisms live in the `penelope` crate and drive these
//! structures through the [`pipeline::Hooks`] trait.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod bitstats;
pub mod btb;
pub mod cache;
pub mod error;
pub mod fault;
pub mod mob;
pub mod pipeline;
pub mod regfile;
pub mod scheduler;
pub mod tlb;
