//! The branch target buffer.
//!
//! §3.2.1 names the branch predictor among the cache-like blocks Penelope
//! can protect ("caches, branch predictor, etc."); the paper evaluates only
//! the DL0 and DTLB, so the BTB here is an *extension* following the same
//! recipe: a tagged, set-associative structure whose entries can be kept
//! invalid-and-inverted. A taken branch that misses the BTB costs a small
//! front-end redirect bubble.

use crate::cache::{AccessOutcome, CacheConfig, CacheStats, SetAssocCache};

/// A branch target buffer (4-byte "lines": one entry per branch address).
///
/// # Example
///
/// ```
/// use uarch::btb::Btb;
///
/// let mut btb = Btb::new(512, 4);
/// assert!(!btb.lookup(0x40_1000, 0).hit, "cold miss");
/// assert!(btb.lookup(0x40_1000, 1).hit, "trained");
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    cache: SetAssocCache,
}

impl Btb {
    /// Creates a BTB with `entries` branch slots at the given
    /// associativity.
    pub fn new(entries: u32, ways: u16) -> Self {
        Btb {
            cache: SetAssocCache::new(CacheConfig {
                size_bytes: u64::from(entries) * 4,
                ways,
                line_bytes: 4,
            }),
        }
    }

    /// Number of branch entries.
    pub fn entries(&self) -> usize {
        self.cache.config().lines()
    }

    /// Looks up (and on miss, trains) the entry for a branch at `pc`.
    pub fn lookup(&mut self, pc: u64, now: u64) -> AccessOutcome {
        self.cache.access(pc, now)
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Instantaneous fraction of entries holding a trained target.
    pub fn valid_fraction(&self) -> f64 {
        self.cache.valid_fraction()
    }

    /// The underlying cache, for the NBTI inversion schemes.
    pub fn cache_mut(&mut self) -> &mut SetAssocCache {
        &mut self.cache
    }

    /// The underlying cache, read-only.
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_branches_occupy_distinct_entries() {
        let mut btb = Btb::new(16, 4);
        for pc in (0x40_0000u64..0x40_0040).step_by(4) {
            btb.lookup(pc, pc);
        }
        // 16 distinct branches fill the 16 entries; all hit afterwards.
        for pc in (0x40_0000u64..0x40_0040).step_by(4) {
            assert!(btb.lookup(pc, pc + 1000).hit);
        }
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut small = Btb::new(16, 4);
        for round in 0..2u64 {
            for i in 0..64u64 {
                small.lookup(0x40_0000 + i * 4, round * 64 + i);
            }
        }
        assert!(small.stats().misses() > 64, "second round cannot all hit");
    }

    #[test]
    fn entries_reported() {
        assert_eq!(Btb::new(512, 4).entries(), 512);
    }
}
