//! Calibration snapshot of the baseline pipeline statistics.
use tracegen::trace::Workload;
use uarch::pipeline::{NoHooks, Pipeline, PipelineConfig, RunResult};

fn main() {
    let w = Workload::sample(2);
    let mut pipe = Pipeline::new(PipelineConfig::default());
    let mut total: Option<RunResult> = None;
    for spec in w.specs() {
        let r = pipe.run(spec.generate(20_000), &mut NoHooks);
        match &mut total {
            Some(t) => t.merge(&r),
            None => total = Some(r),
        }
    }
    let r = total.unwrap();
    let now = pipe.now();
    println!("CPI {:.3}", r.cpi());
    println!(
        "adder util {:?}",
        r.adder_utilization().map(|x| (x * 100.0).round())
    );
    println!(
        "sched occ {:.3}  data occ {:.3}",
        pipe.parts.sched.occupancy(now),
        pipe.parts.sched.data_occupancy(now)
    );
    println!(
        "int free {:.3} fp free {:.3}",
        pipe.parts.int_rf.free_fraction(now),
        pipe.parts.fp_rf.free_fraction(now)
    );
    println!(
        "dl0 missrate {:.4} mru {:.3}  dtlb missrate {:.5}  btb missrate {:.4}",
        pipe.parts.dl0.stats().miss_ratio(),
        pipe.parts.dl0.stats().hit_position_fraction(0),
        pipe.parts.dtlb.stats().miss_ratio(),
        pipe.parts.btb.stats().miss_ratio()
    );
}
