//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the minimal surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! [`BenchmarkGroup::throughput`]), [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs a short calibrated
//! loop and prints one mean-time line per benchmark — enough to compare
//! orders of magnitude and to keep `cargo bench` working offline.
#![warn(clippy::unwrap_used)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark; keeps full sweeps fast.
const TARGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Group of benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let mean = run_named(&full, &mut f);
        if let (Some(Throughput::Elements(n)), Some(mean)) = (&self.throughput, mean) {
            if mean > 0.0 {
                let rate = *n as f64 / mean;
                println!("    thrpt: {:.3} Melem/s", rate / 1e6);
            }
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Units of work per benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: run once to size the batch, then time a batch large
        // enough to be measurable but bounded by TARGET.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }

    fn mean_seconds(&self) -> Option<f64> {
        if self.iters == 0 {
            return None;
        }
        Some(self.elapsed.as_secs_f64() / self.iters as f64)
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) -> Option<f64> {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.mean_seconds() {
        Some(mean) => {
            println!(
                "{name:<40} time: {:>12} ({} iters)",
                format_time(mean),
                bencher.iters
            );
            Some(mean)
        }
        None => {
            println!("{name:<40} time: (not measured)");
            None
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(x)
            })
        });
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_and_measures() {
        benches();
        let mut b = Bencher::default();
        b.iter(|| black_box(1 + 1));
        assert!(b.iters >= 1);
        assert!(b.mean_seconds().is_some());
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("noop", |b| b.iter(|| black_box(0)));
        group.finish();
    }
}
