//! Differential suite for the event-driven pipeline core.
//!
//! [`Pipeline::run`] (skip-ahead scheduling) must be observably identical
//! to [`Pipeline::run_cycle_accurate`] (the per-cycle reference loop):
//! same retired cycles and uops, same residency accounting down to the
//! bit, same telemetry report content. Randomized traces probe the
//! general case; the boundary tests pin the empty trace and a
//! maximally-stalled dependency chain where skip-ahead does all the work.

use penelope_telemetry::{TelemetryHooks, TelemetryOutput};
use proptest::prelude::*;
use tracegen::suite::Suite;
use tracegen::trace::TraceSpec;
use tracegen::uop::{Uop, UopClass};
use uarch::pipeline::{Hooks, NoHooks, Parts, Pipeline, PipelineConfig};
use uarch::scheduler::Field;

/// Everything an outside observer can see of a finished run: retire
/// totals, per-structure residency integrals (bit-exact, not fractions)
/// and cache statistics.
#[derive(Debug, PartialEq)]
struct Observed {
    cycles: u64,
    uops: u64,
    port_issues: [u64; 5],
    sched_fields: Vec<(u64, Vec<u64>)>,
    int_rf: (u64, Vec<u64>),
    fp_rf: (u64, Vec<u64>),
    dl0_stats: uarch::cache::CacheStats,
}

fn residency(r: &uarch::bitstats::BitResidency) -> (u64, Vec<u64>) {
    (
        r.total_time(),
        (0..r.width()).map(|b| r.zero_cycles(b)).collect(),
    )
}

fn observe<I: IntoIterator<Item = Uop>>(trace: I, event_driven: bool) -> Observed {
    let mut pipe = Pipeline::new(PipelineConfig::default());
    let result = if event_driven {
        pipe.run(trace, &mut NoHooks)
    } else {
        pipe.run_cycle_accurate(trace, &mut NoHooks)
    };
    let now = pipe.now();
    pipe.parts.sched.sync(now);
    pipe.parts.int_rf.sync(now);
    pipe.parts.fp_rf.sync(now);
    Observed {
        cycles: result.cycles,
        uops: result.uops,
        port_issues: result.port_issues,
        sched_fields: Field::ALL
            .iter()
            .map(|&f| residency(pipe.parts.sched.field_residency(f)))
            .collect(),
        int_rf: residency(pipe.parts.int_rf.residency()),
        fp_rf: residency(pipe.parts.fp_rf.residency()),
        dl0_stats: pipe.parts.dl0.stats().clone(),
    }
}

/// Telemetry report content for a run (counters, series, histograms) —
/// the simulated-domain body of the JSON run report.
fn telemetry<I: IntoIterator<Item = Uop>>(trace: I, event_driven: bool) -> TelemetryOutput {
    let mut pipe = Pipeline::new(PipelineConfig::default());
    let mut hooks = TelemetryHooks::new(NoHooks, 64, 4096);
    if event_driven {
        pipe.run(trace, &mut hooks);
    } else {
        pipe.run_cycle_accurate(trace, &mut hooks);
    }
    hooks.into_parts().1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_traces_match_the_cycle_accurate_reference(
        suite in 0usize..Suite::ALL.len(),
        seed in 0usize..1024,
        len in 0usize..1500,
    ) {
        let suite = Suite::ALL[suite];
        let spec = TraceSpec::new(suite, seed % suite.trace_count());
        let event = observe(spec.generate(len), true);
        let cycle = observe(spec.generate(len), false);
        prop_assert_eq!(event, cycle);
    }

    #[test]
    fn random_traces_produce_identical_telemetry_reports(
        suite in 0usize..Suite::ALL.len(),
        seed in 0usize..1024,
        len in 1usize..800,
    ) {
        let suite = Suite::ALL[suite];
        let spec = TraceSpec::new(suite, seed % suite.trace_count());
        let event = telemetry(spec.generate(len), true);
        let cycle = telemetry(spec.generate(len), false);
        prop_assert_eq!(event, cycle);
    }
}

#[test]
fn zero_length_trace_is_a_fixed_point_of_both_cores() {
    let event = observe(Vec::new(), true);
    let cycle = observe(Vec::new(), false);
    assert_eq!(event.uops, 0);
    assert_eq!(event, cycle);
}

/// A serial dependency chain at the longest execution latency (FpMul, 6
/// cycles): every uop waits on the previous one's result, so most cycles
/// are idle spans the event core can skip in one step.
fn maximal_stall_chain(len: usize) -> Vec<Uop> {
    (0..len)
        .map(|i| {
            let mut u = Uop::int_alu(1, 1, 2);
            u.class = UopClass::FpMul;
            u.port = UopClass::FpMul.port();
            u.latency = UopClass::FpMul.latency();
            u.pc = i as u64 * 4;
            u
        })
        .collect()
}

#[test]
fn maximal_stall_chain_matches_and_actually_skips() {
    /// Counts how the run's cycles were delivered: ticked one at a time
    /// (`cycle_end`) or covered by a skip-ahead span (`on_idle_span`).
    #[derive(Default)]
    struct SpanCounter {
        ticked: u64,
        spanned: u64,
    }
    impl Hooks for SpanCounter {
        fn cycle_end(&mut self, _parts: &mut Parts, _now: u64) {
            self.ticked += 1;
        }
        fn on_idle_span(&mut self, _parts: &mut Parts, start: u64, end: u64) {
            self.spanned += end - start + 1;
        }
    }

    let trace = maximal_stall_chain(64);
    let event = observe(trace.clone(), true);
    let cycle = observe(trace.clone(), false);
    assert_eq!(event, cycle);

    let mut pipe = Pipeline::new(PipelineConfig::default());
    let mut counter = SpanCounter::default();
    let result = pipe.run(trace, &mut counter);
    assert_eq!(
        counter.ticked + counter.spanned,
        result.cycles,
        "every cycle is either ticked or covered by exactly one span"
    );
    assert!(
        counter.spanned > result.cycles / 2,
        "a serial max-latency chain must be dominated by skipped spans \
         ({} of {} cycles spanned)",
        counter.spanned,
        result.cycles
    );
}
