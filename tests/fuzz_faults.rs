//! Fault-injection fuzzing: every seeded [`FaultPlan`], pushed through the
//! quick-scale pipeline, must produce either a typed error or a valid
//! summary — never a panic.
//!
//! The deterministic sweep below covers well over the 100 random plans the
//! robustness goal asks for; the property tests then sample the seed space
//! more freely (with a small case count, since each case is a full
//! pipeline run).

use std::panic::{catch_unwind, AssertUnwindSafe};

use penelope::error::Error;
use penelope::experiments::{efficiency_summary_faulted, Scale};
use penelope::fault::{FaultKind, FaultPlan};
use proptest::prelude::*;

/// Runs one plan under `catch_unwind` so a regression reports the seed and
/// plan that broke instead of aborting the whole sweep at the first panic.
fn run_plan(plan: &FaultPlan) -> Result<Result<usize, Error>, String> {
    let cloned = plan.clone();
    catch_unwind(AssertUnwindSafe(move || {
        efficiency_summary_faulted(Scale::quick(), &cloned).map(|rows| rows.len())
    }))
    .map_err(|_| format!("plan {plan:?} panicked"))
}

#[test]
fn a_hundred_random_plans_never_panic() {
    let mut panics = Vec::new();
    let mut ok_runs = 0usize;
    let mut typed_errors = 0usize;
    for seed in 0..120u64 {
        let plan = FaultPlan::random(seed);
        match run_plan(&plan) {
            Ok(Ok(rows)) => {
                assert_eq!(rows, 4, "seed {seed} produced a malformed summary");
                ok_runs += 1;
            }
            Ok(Err(_)) => typed_errors += 1,
            Err(message) => panics.push(message),
        }
    }
    assert!(panics.is_empty(), "panicking plans: {panics:?}");
    // The sweep must exercise both outcomes, or it proves nothing.
    assert!(ok_runs > 0, "no random plan survived to a summary");
    assert!(typed_errors > 0, "no random plan was rejected");
}

#[test]
fn every_single_fault_kind_is_survivable_alone() {
    for (index, kind) in FaultKind::MENU.iter().enumerate() {
        let plan = FaultPlan::new(index as u64).with(*kind);
        if let Err(message) = run_plan(&plan) {
            panic!("single-kind {message}");
        }
    }
}

#[test]
fn the_full_menu_at_once_is_survivable() {
    let mut plan = FaultPlan::new(0xC0FFEE);
    for kind in FaultKind::MENU {
        plan = plan.with(kind);
    }
    if let Err(message) = run_plan(&plan) {
        panic!("full-menu {message}");
    }
}

#[test]
fn fault_outcomes_are_deterministic_per_seed() {
    for seed in [3u64, 17, 91] {
        let plan = FaultPlan::random(seed);
        let first = efficiency_summary_faulted(Scale::quick(), &plan);
        let second = efficiency_summary_faulted(Scale::quick(), &plan);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                let key = |rows: &[penelope::experiments::EfficiencyRow]| {
                    rows.iter()
                        .map(|r| (r.name.clone(), r.efficiency.to_bits()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(key(&a), key(&b), "seed {seed} diverged");
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "seed {seed} diverged"),
            (a, b) => panic!("seed {seed} flipped outcome: {a:?} vs {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_seeds_never_panic(seed in any::<u64>()) {
        let plan = FaultPlan::random(seed);
        prop_assert!(run_plan(&plan).is_ok(), "seed {seed} panicked");
    }

    #[test]
    fn arbitrary_kind_pairs_never_panic(seed in any::<u64>(), a in 0usize..16, b in 0usize..16) {
        let plan = FaultPlan::new(seed)
            .with(FaultKind::MENU[a])
            .with(FaultKind::MENU[b]);
        prop_assert!(run_plan(&plan).is_ok(), "pair ({a}, {b}) panicked");
    }
}
