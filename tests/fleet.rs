//! Integration tests for fleet-scale Monte Carlo sweeps: the mergeable
//! sketches must be partition-invariant (any way of splitting the
//! observation stream into cells merges back to the union-stream sketch),
//! and the fleet driver's report must stay byte-identical across jobs
//! settings and across a crash-and-resume through the checkpoint journal.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use penelope::error::Error;
use penelope::experiments::Scale;
use penelope::fleet::{self, FleetConfig, FleetSketch, FleetSummary};
use penelope::journal::{CheckpointContext, JournalHeader};
use penelope::obs;
use penelope::par;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, Json};
use proptest::prelude::*;

/// Serializes tests touching the process-global jobs/checkpoint slots.
static FLEET_LOCK: Mutex<()> = Mutex::new(());

fn fleet_lock() -> MutexGuard<'static, ()> {
    FLEET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn settings() -> Settings {
    Settings {
        sample_period: 256,
        series_capacity: 128,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("penelope-fleet-tests");
    fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

fn header() -> JournalHeader {
    JournalHeader {
        binary: "fleet".to_string(),
        scale: obs::scale_json(&Scale::quick()),
        fault_seed: 0,
        retries: 1,
        cell_budget: None,
    }
}

/// Strips the report's wall-clock fields — everything else must be
/// byte-identical across jobs settings and interruption.
fn canonicalize(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "wall_seconds" | "cycles_per_sec" | "uops_per_sec"
                )
            });
            for (_, value) in fields.iter_mut() {
                canonicalize(value);
            }
        }
        Json::Array(items) => {
            for value in items.iter_mut() {
                canonicalize(value);
            }
        }
        _ => {}
    }
}

/// Runs the quick-scale fleet driver at the given jobs setting (with an
/// optional checkpoint context armed) and returns the canonicalized
/// report encoding plus the summary.
fn run_fleet(jobs: usize, context: Option<CheckpointContext>) -> (String, FleetSummary) {
    par::set_jobs(jobs);
    par::set_checkpoint(context);
    recorder::install(settings());
    let result: Result<FleetSummary, Error> =
        fleet::fleet(Scale::quick(), FleetConfig::for_scale(Scale::quick()));
    let collector = recorder::finish().expect("recorder was installed");
    par::set_checkpoint(None);
    par::set_jobs(0);
    let summary = result.expect("quick-scale fleet runs");
    let mut report = build_report(&collector);
    canonicalize(&mut report);
    (report.encode(), summary)
}

/// Simulates a crash mid-sweep: keeps the journal header plus the first
/// `keep` data records, as a SIGKILL between atomic appends would.
fn truncate_journal(path: &PathBuf, keep: usize) -> usize {
    let text = fs::read_to_string(path).expect("journal exists");
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > keep + 1,
        "journal too short to truncate: {} lines",
        lines.len()
    );
    lines.truncate(keep + 1);
    let kept = lines.len() - 1;
    let mut out = lines.join("\n");
    out.push('\n');
    fs::write(path, out).expect("journal is writable");
    kept
}

// ------------------------------------------------ partition invariance

/// A deterministic observation stream: (guardband, duty, vmin) triples in
/// the sketches' metric ranges.
fn observations(len: usize, seed: u64) -> Vec<(f64, f64, f64)> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            (0.25 * next(), 0.5 + 0.5 * next(), 0.125 * next())
        })
        .collect()
}

/// Observes a slice of the stream (global indices preserved) into a
/// fresh per-cell sketch.
fn observe_slice(xs: &[(f64, f64, f64)], from: usize, to: usize) -> FleetSketch {
    let mut sketch = FleetSketch::empty();
    for (i, &(g, d, v)) in xs[from..to].iter().enumerate() {
        sketch.observe((from + i) as u64, g, d, v);
    }
    sketch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any partition of the stream into contiguous cells, merged in cell
    /// order, equals observing the whole stream: counts, histograms and
    /// the worst-core argmax exactly, moments to float tolerance.
    #[test]
    fn any_partition_merges_to_the_union_stream(
        seed in 0u64..1_000,
        len in 1usize..400,
        cuts in proptest::collection::vec(0usize..400, 0..6),
    ) {
        let xs = observations(len, seed);
        let whole = observe_slice(&xs, 0, len);

        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (len + 1)).collect();
        bounds.push(0);
        bounds.push(len);
        bounds.sort_unstable();
        let merged = bounds
            .windows(2)
            .map(|w| observe_slice(&xs, w[0], w[1]))
            .fold(FleetSketch::empty(), |mut acc, cell| {
                acc.merge(&cell);
                acc
            });

        prop_assert_eq!(merged.instances, whole.instances);
        prop_assert_eq!(&merged.guardband.histogram, &whole.guardband.histogram);
        prop_assert_eq!(&merged.duty.histogram, &whole.duty.histogram);
        prop_assert_eq!(&merged.vmin.histogram, &whole.vmin.histogram);
        prop_assert_eq!(merged.worst, whole.worst);
        for (m, w) in [
            (&merged.guardband.moments, &whole.guardband.moments),
            (&merged.duty.moments, &whole.duty.moments),
            (&merged.vmin.moments, &whole.vmin.moments),
        ] {
            prop_assert_eq!(m.count, w.count);
            prop_assert_eq!(m.min, w.min);
            prop_assert_eq!(m.max, w.max);
            prop_assert!((m.mean - w.mean).abs() < 1e-12, "mean {} vs {}", m.mean, w.mean);
            prop_assert!((m.m2 - w.m2).abs() < 1e-9, "m2 {} vs {}", m.m2, w.m2);
        }
    }
}

// ----------------------------------------------------- driver pinning

#[test]
fn fleet_reports_are_byte_identical_across_jobs_settings() {
    let _guard = fleet_lock();
    let (serial_report, serial) = run_fleet(1, None);
    let (parallel_report, parallel) = run_fleet(4, None);
    assert_eq!(serial, parallel, "fleet summary must not depend on --jobs");
    assert_eq!(
        serial_report, parallel_report,
        "fleet report differs across jobs outside wall-clock fields"
    );
    // The summary is non-degenerate: the whole quick fleet was observed
    // and the distribution blocks are populated.
    assert_eq!(serial.sketch.instances, serial.config.fleet_size);
    assert!(serial.sketch.worst.is_some());
}

#[test]
fn an_interrupted_fleet_sweep_resumes_byte_identically() {
    let _guard = fleet_lock();
    let (baseline_report, baseline) = run_fleet(1, None);

    for jobs in [1, 4] {
        let path = tmp_path(&format!("fleet-jobs{jobs}.jsonl"));

        // A clean checkpointed run is indistinguishable from an
        // uncheckpointed one.
        let context = CheckpointContext::create(&path, &header()).expect("journal opens");
        let (full_report, full) = run_fleet(jobs, Some(context));
        assert_eq!(full, baseline, "jobs={jobs}");
        assert_eq!(full_report, baseline_report, "jobs={jobs}");

        // Crash after three completed cells, then resume.
        let kept = truncate_journal(&path, 3);
        let context = CheckpointContext::resume(&path, &header()).expect("resume succeeds");
        assert_eq!(context.restored_cells(), kept, "jobs={jobs}");
        let (resumed_report, resumed) = run_fleet(jobs, Some(context));
        assert_eq!(resumed, baseline, "jobs={jobs}");
        assert_eq!(
            resumed_report, baseline_report,
            "resumed fleet sweep must be byte-identical to an uninterrupted run (jobs={jobs})"
        );
    }
}
