//! Integration tests for the sweep supervisor: retry, quarantine, the
//! cycle-budget watchdog, and the determinism of the warnings they leave
//! in the run report.
//!
//! The contract under test extends the engine's byte-identity guarantee
//! to *unhealthy* sweeps: a grid containing panicking, erroring and
//! retried cells must produce the same report (modulo wall-clock fields)
//! at `--jobs 1` and `--jobs 4`, with supervisor warnings in cell-index
//! order regardless of which worker hit the failure first.

use std::sync::{Mutex, MutexGuard};

use penelope::error::Error;
use penelope::par::{self, SupervisorPolicy};
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, Json};

/// Serializes tests touching the process-global supervisor policy.
static SUPERVISOR_LOCK: Mutex<()> = Mutex::new(());

fn supervisor_lock() -> MutexGuard<'static, ()> {
    SUPERVISOR_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn settings() -> Settings {
    Settings {
        sample_period: 256,
        series_capacity: 128,
    }
}

/// Strips the report's wall-clock fields — everything else must be
/// byte-identical across jobs settings.
fn canonicalize(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "wall_seconds" | "cycles_per_sec" | "uops_per_sec"
                )
            });
            for (_, value) in fields.iter_mut() {
                canonicalize(value);
            }
        }
        Json::Array(items) => {
            for value in items.iter_mut() {
                canonicalize(value);
            }
        }
        _ => {}
    }
}

fn warnings_of(report: &Json) -> Vec<String> {
    report
        .get("warnings")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|w| w.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

/// Runs an unhealthy 8-cell grid — cell 2 fails once then recovers,
/// cell 5 errors persistently, cell 6 panics persistently — and returns
/// the canonicalized report plus the per-cell results.
fn unhealthy_grid(jobs: usize) -> (Json, Vec<Result<usize, Error>>) {
    recorder::install(settings());
    let results = par::run_cells_with_jobs(jobs, 8, |cell| {
        match cell.index {
            2 if cell.attempt == 0 => {
                return Err(Error::config("transient wobble"));
            }
            5 => return Err(Error::config("persistent fault")),
            6 => panic!("cell 6 exploded"),
            _ => {}
        }
        recorder::phase(&format!("cell {}", cell.index), || {
            recorder::record_run((cell.index as u64 + 1) * 100, cell.index as u64 + 1);
        });
        Ok(cell.index)
    });
    let collector = recorder::finish().expect("recorder was installed");
    let mut report = build_report(&collector);
    canonicalize(&mut report);
    (report, results)
}

#[test]
fn supervisor_warnings_are_deterministic_and_in_cell_order() {
    let _guard = supervisor_lock();
    let (serial_report, serial) = unhealthy_grid(1);
    let (parallel_report, parallel) = unhealthy_grid(4);

    // The exact warning stream, in cell-index order: cell 2's retry and
    // recovery, then cell 5's retry and quarantine, then cell 6's panic
    // retry and quarantine (payload message preserved).
    let expected = vec![
        "sweep cell 2: attempt 1 failed (configuration: transient wobble); retrying".to_string(),
        "sweep cell 2: recovered on attempt 2".to_string(),
        "sweep cell 5: attempt 1 failed (configuration: persistent fault); retrying".to_string(),
        "quarantined: sweep cell 5 failed after 2 attempt(s): configuration: persistent fault"
            .to_string(),
        "sweep cell 6: attempt 1 failed (worker panicked: cell 6 exploded); retrying".to_string(),
        "quarantined: sweep cell 6 failed after 2 attempt(s): worker panicked: cell 6 exploded"
            .to_string(),
    ];
    assert_eq!(warnings_of(&serial_report), expected);

    // Healthy cells returned values; sick cells returned quarantines.
    for (index, result) in serial.iter().enumerate() {
        match (index, result) {
            (5 | 6, Err(Error::Quarantined { cell, attempts, .. })) => {
                assert_eq!(*cell, index);
                assert_eq!(*attempts, 2);
            }
            (5 | 6, other) => panic!("cell {index}: expected quarantine, got {other:?}"),
            (_, Ok(value)) => assert_eq!(*value, index),
            (_, Err(err)) => panic!("cell {index}: unexpected error {err}"),
        }
    }
    assert_eq!(
        serial.iter().map(|r| r.is_ok()).collect::<Vec<_>>(),
        parallel.iter().map(|r| r.is_ok()).collect::<Vec<_>>(),
    );

    // The whole report — warnings, merged telemetry from the surviving
    // cells, phase stream — is byte-identical across jobs settings.
    assert_eq!(
        serial_report.encode(),
        parallel_report.encode(),
        "an unhealthy sweep must still merge deterministically"
    );
}

#[test]
fn persistent_faults_yield_a_partial_report_not_a_panic() {
    let _guard = supervisor_lock();
    let (report, results) = unhealthy_grid(4);

    // Quarantined cells are recorded, completed cells are preserved: the
    // report still carries the healthy cells' phases and totals.
    let quarantined = results
        .iter()
        .filter(|r| matches!(r, Err(Error::Quarantined { .. })))
        .count();
    assert_eq!(quarantined, 2);
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 6);
    let encoded = report.encode();
    assert!(
        encoded.contains("cell 7"),
        "healthy phases survive: {encoded}"
    );
    // The six healthy cells (0,1,2,3,4,7) recorded (index+1)*100 cycles
    // each; the quarantined cells contributed nothing.
    let total = report
        .get("totals")
        .and_then(|t| t.get("cycles"))
        .and_then(Json::as_u64)
        .expect("totals.cycles present");
    assert_eq!(total, 100 + 200 + 300 + 400 + 500 + 800);
}

#[test]
fn the_cycle_budget_is_enforced_at_any_jobs() {
    let _guard = supervisor_lock();
    let default_policy = par::supervisor();
    par::set_supervisor(SupervisorPolicy {
        retries: 1,
        backoff_seed: 0,
        cycle_budget: Some(500),
    });
    for jobs in [1, 4] {
        recorder::install(settings());
        let results = par::run_cells_with_jobs(jobs, 5, |cell| {
            let cycles = if cell.index == 3 { 10_000 } else { 100 };
            recorder::record_run(cycles, 1);
            Ok(cell.index)
        });
        let collector = recorder::finish().expect("recorder was installed");
        let report = build_report(&collector);
        match &results[3] {
            Err(Error::Quarantined {
                cell,
                attempts,
                message,
                ..
            }) => {
                assert_eq!(*cell, 3, "jobs={jobs}");
                // Budget overruns are deterministic: no retry is burned.
                assert_eq!(*attempts, 1, "jobs={jobs}");
                assert!(
                    message.contains("exceeded cycle budget (10000 > 500 cycles)"),
                    "jobs={jobs}: {message}"
                );
            }
            other => panic!("jobs={jobs}: expected a budget quarantine, got {other:?}"),
        }
        assert!(
            results
                .iter()
                .enumerate()
                .all(|(i, r)| i == 3 || matches!(r, Ok(v) if *v == i)),
            "jobs={jobs}: in-budget cells must complete"
        );
        let warnings = warnings_of(&report);
        assert_eq!(warnings.len(), 1, "jobs={jobs}: {warnings:?}");
        assert!(warnings[0].starts_with("quarantined: sweep cell 3"));
    }
    par::set_supervisor(default_policy);
}
