//! Integration tests for the extension experiments (beyond the paper's
//! evaluated scope).

use penelope::experiments::{self, Scale};

#[test]
fn btb_extension_shows_the_cost_of_parking_live_capacity() {
    let rows = experiments::btb_extension(Scale::quick()).expect("quick scale runs");
    assert_eq!(rows.len(), 5);
    let by_name = |needle: &str| {
        rows.iter()
            .find(|r| r.scheme.contains(needle))
            .unwrap_or_else(|| panic!("missing {needle}"))
    };
    let baseline = by_name("Baseline");
    let line_fixed = by_name("LineFixed");
    let dynamic = by_name("LineDynamic");

    assert_eq!(baseline.cpi_loss, 0.0);
    assert!(
        baseline.miss_ratio < 0.25,
        "BTB works: {}",
        baseline.miss_ratio
    );
    // The BTB is small and fully live: fixed parking hurts measurably...
    assert!(line_fixed.cpi_loss > 0.005, "loss {}", line_fixed.cpi_loss);
    assert!(line_fixed.inverted_fraction > 0.4);
    // ...and the activity test correctly refuses to engage.
    assert!(dynamic.cpi_loss <= line_fixed.cpi_loss);
}

#[test]
fn vmin_extension_reports_energy_savings() {
    let rows = experiments::vmin_extension(Scale::quick()).expect("quick scale runs");
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert!(
            row.penelope_duty <= row.baseline_duty + 0.02,
            "{}: duty {} -> {}",
            row.structure,
            row.baseline_duty,
            row.penelope_duty
        );
        assert!(
            row.penelope_vmin <= row.baseline_vmin,
            "{}: Vmin must not grow",
            row.structure
        );
        assert!(
            row.energy_ratio <= 1.0,
            "{}: energy ratio {}",
            row.structure,
            row.energy_ratio
        );
    }
    // The balanced DL0 approaches the 10x Vth-shift reduction.
    let dl0 = rows.iter().find(|r| r.structure == "DL0").expect("DL0 row");
    assert!(dl0.penelope_vmin < 0.03, "DL0 Vmin {}", dl0.penelope_vmin);
}

#[test]
fn ablation_shows_rotation_and_sampling_tradeoffs() {
    let rows = experiments::ablation(Scale::quick()).expect("quick scale runs");
    let rotations: Vec<&experiments::AblationRow> = rows
        .iter()
        .filter(|r| r.label.contains("rotation"))
        .collect();
    assert_eq!(rotations.len(), 3);
    // Faster rotation flushes more often → at least as much loss.
    assert!(rotations[0].cpi_loss >= rotations[2].cpi_loss - 1e-6);

    let samples: Vec<&experiments::AblationRow> = rows
        .iter()
        .filter(|r| r.label.contains("sample period"))
        .collect();
    assert_eq!(samples.len(), 3);
    for s in &samples {
        let duty = s.worst_duty.expect("ISV rows report a duty");
        // Even very stale RINV samples keep the file near balance.
        assert!(duty < 0.75, "{}: duty {duty}", s.label);
        assert_eq!(s.cpi_loss, 0.0, "ISV never costs CPI");
    }
}

#[test]
fn tail_statistic_favors_the_dynamic_scheme() {
    let rows = experiments::table3_tail(Scale::quick()).expect("quick scale runs");
    assert_eq!(rows.len(), 3);
    let dynamic = rows
        .iter()
        .find(|r| r.scheme.contains("Dynamic"))
        .expect("dynamic row");
    let line_fixed = rows
        .iter()
        .find(|r| r.scheme.contains("LineFixed"))
        .expect("line-fixed row");
    // §4.6: the dynamic scheme impacts fewer programs.
    assert!(dynamic.over_5 <= line_fixed.over_5 + 1e-9);
    assert!(dynamic.mean_loss <= line_fixed.mean_loss + 1e-9);
    for r in &rows {
        assert!(r.over_10 <= r.over_5, "{}: tail must nest", r.scheme);
    }
}
