//! Integration tests for the telemetry layer: deterministic JSONL
//! exports, valid run reports, and the inertness of a disabled recorder.
//!
//! The determinism pin is the load-bearing one: the JSONL export contains
//! only simulated quantities, so two runs of the same seeded driver must
//! produce byte-identical telemetry. Any nondeterminism smuggled into the
//! pipeline (hash-map iteration, wall-clock leakage, uninitialized state)
//! fails this test before it can corrupt a reproduced figure.

use penelope::experiments::{self, Scale};
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, series_jsonl, validate_report, Collector, Json};

fn settings() -> Settings {
    Settings {
        sample_period: 256,
        series_capacity: 128,
    }
}

/// Runs the Figure 6 driver (register-file balancing — it exercises the
/// full Penelope hook chain) under a fresh recorder and detaches the
/// collector.
fn instrumented_fig6() -> Collector {
    recorder::install(settings());
    experiments::fig6(Scale::quick()).expect("quick fig6 runs");
    recorder::finish().expect("recorder was installed")
}

#[test]
fn same_seed_runs_emit_byte_identical_jsonl() {
    let first = series_jsonl(&instrumented_fig6());
    let second = series_jsonl(&instrumented_fig6());
    assert!(
        first.lines().count() > 1,
        "expected a metrics line plus series lines, got:\n{first}"
    );
    assert_eq!(first, second, "seeded telemetry must be deterministic");
}

#[test]
fn jsonl_lines_are_standalone_json_without_wall_time() {
    let jsonl = series_jsonl(&instrumented_fig6());
    assert!(!jsonl.contains("wall"), "wall time leaked into JSONL");
    for line in jsonl.lines() {
        penelope_telemetry::json::parse(line).expect("every JSONL line parses");
    }
}

#[test]
fn driver_reports_validate_and_carry_phases() {
    let collector = instrumented_fig6();
    let report = build_report(&collector);
    validate_report(&report).expect("driver-built report validates");

    let phases = report
        .get("phases")
        .and_then(Json::as_array)
        .expect("phases array");
    let names: Vec<&str> = phases
        .iter()
        .filter_map(|p| p.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("fig6")),
        "fig6 phases missing from {names:?}"
    );
    let cycles = report
        .get("totals")
        .and_then(|t| t.get("cycles"))
        .and_then(Json::as_u64)
        .expect("totals.cycles");
    assert!(cycles > 0, "instrumented run credited no cycles");
}

#[test]
fn faulted_driver_still_reports() {
    use penelope::fault::FaultPlan;
    recorder::install(settings());
    // Whatever the plan does, the recorder must come back with a valid
    // report — faulted runs are exactly when telemetry matters most.
    let _ = experiments::efficiency_summary_faulted(Scale::quick(), &FaultPlan::random(7));
    let collector = recorder::finish().expect("recorder was installed");
    validate_report(&build_report(&collector)).expect("faulted report validates");
}

#[test]
fn disabled_recorder_stays_inert_across_a_driver() {
    let _ = recorder::finish();
    experiments::fig6(Scale::quick()).expect("quick fig6 runs");
    assert!(
        recorder::finish().is_none(),
        "driver must not install a recorder on its own"
    );
}
