//! Integration tests across crates: the pipeline, the mechanisms and the
//! metric interact correctly on real workloads.

use nbti_model::guardband::GuardbandModel;
use penelope::cache_aware::SchemeKind;
use penelope::processor::{build, PenelopeConfig};
use tracegen::suite::Suite;
use tracegen::trace::TraceSpec;
use uarch::cache::CacheConfig;
use uarch::pipeline::{NoHooks, Pipeline, PipelineConfig};

#[test]
fn every_suite_runs_through_the_pipeline() {
    for suite in Suite::ALL {
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let result = pipe.run(TraceSpec::new(suite, 0).generate(5_000), &mut NoHooks);
        assert_eq!(result.uops, 5_000, "{suite} lost uops");
        let cpi = result.cpi();
        assert!((0.25..=5.0).contains(&cpi), "{suite}: CPI {cpi}");
        assert_eq!(pipe.parts.mob.in_use_count(), 0, "{suite} leaked MOB ids");
    }
}

#[test]
fn miss_penalties_raise_cpi_monotonically() {
    let run_with_penalty = |penalty: u64| {
        let config = PipelineConfig {
            dl0: CacheConfig::dl0(8, 4),
            dl0_miss_penalty: penalty,
            ..PipelineConfig::default()
        };
        let mut pipe = Pipeline::new(config);
        pipe.run(
            TraceSpec::new(Suite::Server, 1).generate(20_000),
            &mut NoHooks,
        )
        .cpi()
    };
    let fast = run_with_penalty(4);
    let slow = run_with_penalty(40);
    assert!(slow > fast, "penalty 40 ({slow}) vs 4 ({fast})");
}

#[test]
fn penelope_slowdown_is_small_on_average() {
    // The whole point: protection costs around a percent of CPI on
    // average. Individual cache-hungry traces can lose more (which is what
    // motivates the dynamic scheme), so this checks a cross-suite mix.
    let mix = [
        (Suite::Office, 1),
        (Suite::Multimedia, 3),
        (Suite::SpecInt2000, 2),
        (Suite::Kernels, 0),
    ];
    let run = |protected: bool| {
        let mut cycles = 0;
        let mut uops = 0;
        if protected {
            let (mut pipe, mut hooks) = build(&PenelopeConfig::default()).expect("valid config");
            for (suite, idx) in mix {
                let r = pipe.run(TraceSpec::new(suite, idx).generate(25_000), &mut hooks);
                cycles += r.cycles;
                uops += r.uops;
            }
        } else {
            let mut pipe = Pipeline::new(PipelineConfig::default());
            for (suite, idx) in mix {
                let r = pipe.run(TraceSpec::new(suite, idx).generate(25_000), &mut NoHooks);
                cycles += r.cycles;
                uops += r.uops;
            }
        }
        cycles as f64 / uops as f64
    };
    let loss = run(true) / run(false) - 1.0;
    assert!(loss < 0.06, "Penelope CPI loss {loss}");
}

#[test]
fn set_parking_costs_more_on_small_caches() {
    let loss_for = |kb: u32| {
        let pconfig = PipelineConfig {
            dl0: CacheConfig::dl0(kb, 8),
            ..PipelineConfig::default()
        };
        let trace = || TraceSpec::new(Suite::Spec2006, 0).generate(25_000);

        let mut base = Pipeline::new(pconfig);
        let base_cpi = base.run(trace(), &mut NoHooks).cpi();

        let config = PenelopeConfig {
            pipeline: pconfig,
            dl0_scheme: SchemeKind::set_fixed_50(50_000),
            dtlb_scheme: SchemeKind::Baseline,
            ..PenelopeConfig::default()
        };
        let (mut pipe, mut hooks) = build(&config).expect("valid config");
        let cpi = pipe.run(trace(), &mut hooks).cpi();
        (cpi / base_cpi - 1.0).max(0.0)
    };
    let large = loss_for(32);
    let small = loss_for(8);
    assert!(
        small >= large,
        "halving an 8KB cache ({small}) should hurt at least as much as a 32KB one ({large})"
    );
}

#[test]
fn guardband_model_consumes_measured_biases() {
    // End-to-end: run, measure, map to guardband — types compose.
    let model = GuardbandModel::paper_calibrated();
    let mut pipe = Pipeline::new(PipelineConfig::default());
    pipe.run(
        TraceSpec::new(Suite::Office, 4).generate(10_000),
        &mut NoHooks,
    );
    let now = pipe.now();
    pipe.parts.int_rf.sync(now);
    let worst = pipe.parts.int_rf.residency().worst_cell_duty();
    let gb = model.cell_guardband(worst);
    assert!(gb.fraction() >= 0.02 && gb.fraction() <= 0.20);
}

#[test]
fn dtlb_scheme_operates_on_page_granularity() {
    let config = PenelopeConfig {
        dl0_scheme: SchemeKind::Baseline,
        dtlb_scheme: SchemeKind::line_fixed_50(),
        ..PenelopeConfig::default()
    };
    let (mut pipe, mut hooks) = build(&config).expect("valid config");
    pipe.run(
        TraceSpec::new(Suite::Server, 2).generate(25_000),
        &mut hooks,
    );
    let now = pipe.now();
    let frac = hooks.dtlb.inverted_fraction(pipe.parts.dtlb.cache(), now);
    assert!(frac > 0.25, "DTLB inverted fraction {frac}");
}
