//! Golden regression values for the efficiency comparison (§4.2).
//!
//! The two conventional design points are pure guardband-model arithmetic
//! — no simulation noise — so they are pinned tightly. The measured
//! Penelope rows depend on the quick-scale workload sample, so only their
//! identity, ordering and sanity are pinned here (determinism across runs
//! is covered by the `determinism` suite).

use penelope::experiments::{efficiency_summary, efficiency_summary_faulted, Scale};
use penelope::fault::FaultPlan;

const ROW_NAMES: [&str; 6] = [
    "baseline (full guardband)",
    "invert periodically",
    "Penelope adder (round-robin inputs)",
    "Penelope register file (ISV at release)",
    "Penelope scheduler (ALL1/ALL1-K%/ISV)",
    "Penelope DL0 (LineFixed50%)",
];

#[test]
fn efficiency_table_keeps_its_shape_and_order() {
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ROW_NAMES);
    for row in &rows {
        assert!(
            row.efficiency.is_finite() && row.efficiency >= 1.0,
            "{}: NBTIefficiency {} out of range",
            row.name,
            row.efficiency
        );
    }
}

#[test]
fn baseline_efficiency_is_pinned() {
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let baseline = &rows[0];
    assert!(
        (baseline.efficiency - 1.728).abs() < 1e-3,
        "baseline drifted to {}",
        baseline.efficiency
    );
    assert_eq!(baseline.paper, 1.73);
}

#[test]
fn invert_mode_efficiency_is_pinned() {
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let invert = &rows[1];
    assert!(
        (invert.efficiency - 1.41).abs() < 0.02,
        "invert mode drifted to {}",
        invert.efficiency
    );
    assert_eq!(invert.paper, 1.41);
}

#[test]
fn measured_rows_stay_within_paper_neighborhood() {
    // The quick-scale sample is noisy, but the measured designs must
    // still beat the full-guardband baseline and stay within a broad
    // band of the paper's numbers — a cheap tripwire for gross
    // calibration regressions.
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let baseline = rows[0].efficiency;
    for row in &rows[2..] {
        assert!(
            row.efficiency < baseline,
            "{} ({}) does not beat the baseline ({baseline})",
            row.name,
            row.efficiency
        );
        assert!(
            (row.efficiency - row.paper).abs() < 0.35,
            "{} drifted to {} (paper: {})",
            row.name,
            row.efficiency,
            row.paper
        );
    }
}

#[test]
fn empty_fault_plan_reproduces_the_clean_baseline() {
    let rows = efficiency_summary_faulted(Scale::quick(), &FaultPlan::none())
        .expect("empty plan runs clean");
    assert!(
        (rows[0].efficiency - 1.728).abs() < 1e-3,
        "faulted-path baseline drifted to {}",
        rows[0].efficiency
    );
}
