//! Golden regression values for the efficiency comparison (§4.2).
//!
//! The two conventional design points are pure guardband-model arithmetic
//! — no simulation noise — so they are pinned tightly. The measured
//! Penelope rows depend on the quick-scale workload sample, so only their
//! identity, ordering and sanity are pinned here (determinism across runs
//! is covered by the `determinism` suite).

use std::sync::{Mutex, MutexGuard};

use penelope::error::Error;
use penelope::experiments::{self, efficiency_summary, efficiency_summary_faulted, Scale};
use penelope::fault::FaultPlan;
use penelope::par;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, Json};

const ROW_NAMES: [&str; 6] = [
    "baseline (full guardband)",
    "invert periodically",
    "Penelope adder (round-robin inputs)",
    "Penelope register file (ISV at release)",
    "Penelope scheduler (ALL1/ALL1-K%/ISV)",
    "Penelope DL0 (LineFixed50%)",
];

#[test]
fn efficiency_table_keeps_its_shape_and_order() {
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ROW_NAMES);
    for row in &rows {
        assert!(
            row.efficiency.is_finite() && row.efficiency >= 1.0,
            "{}: NBTIefficiency {} out of range",
            row.name,
            row.efficiency
        );
    }
}

#[test]
fn baseline_efficiency_is_pinned() {
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let baseline = &rows[0];
    assert!(
        (baseline.efficiency - 1.728).abs() < 1e-3,
        "baseline drifted to {}",
        baseline.efficiency
    );
    assert_eq!(baseline.paper, 1.73);
}

#[test]
fn invert_mode_efficiency_is_pinned() {
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let invert = &rows[1];
    assert!(
        (invert.efficiency - 1.41).abs() < 0.02,
        "invert mode drifted to {}",
        invert.efficiency
    );
    assert_eq!(invert.paper, 1.41);
}

#[test]
fn measured_rows_stay_within_paper_neighborhood() {
    // The quick-scale sample is noisy, but the measured designs must
    // still beat the full-guardband baseline and stay within a broad
    // band of the paper's numbers — a cheap tripwire for gross
    // calibration regressions.
    let rows = efficiency_summary(Scale::quick()).expect("quick scale runs");
    let baseline = rows[0].efficiency;
    for row in &rows[2..] {
        assert!(
            row.efficiency < baseline,
            "{} ({}) does not beat the baseline ({baseline})",
            row.name,
            row.efficiency
        );
        assert!(
            (row.efficiency - row.paper).abs() < 0.35,
            "{} drifted to {} (paper: {})",
            row.name,
            row.efficiency,
            row.paper
        );
    }
}

// --- Run-report byte-identity pins -------------------------------------
//
// The fig6/table3 JSON run reports are pinned by hash: any accounting
// drift — a zero-count off by one, a float summed in a different order, a
// series sampled at a different cycle — flips the hash. Only wall-clock
// fields (`wall_seconds`, `cycles_per_sec`, `uops_per_sec`) are stripped
// before hashing; everything else must be byte-identical, at `--jobs 1`
// and `--jobs 4` alike.
//
// Two generations of pins coexist on purpose. The PRE_TRACING constants
// were captured from the scalar per-bit residency loop before the
// word-parallel SWAR kernel replaced it, and predate the tracing layer;
// they are asserted against the report with its `spans` key dropped,
// proving the span machinery only *added* a key and perturbed no existing
// accounting. The full-report constants pin the current schema including
// the cycle-domain span tree.

static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn jobs_lock() -> MutexGuard<'static, ()> {
    JOBS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const FIG6_REPORT_FNV1A: u64 = 0xe85f_91cf_3266_1cd1;
const TABLE3_REPORT_FNV1A: u64 = 0x8d45_eff3_f2ab_9f57;
const PRE_TRACING_FIG6_REPORT_FNV1A: u64 = 0x8e66_90d8_63a2_c3c1;
const PRE_TRACING_TABLE3_REPORT_FNV1A: u64 = 0xd27c_cdd1_79e7_4a55;

/// FNV-1a 64-bit, the same hash everywhere so pins are easy to regenerate
/// (print `canonical_report_hash(...)` and paste).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Strips wall-clock fields in place; everything that remains is a pure
/// function of the simulation.
fn strip_wall_clock(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "wall_seconds" | "cycles_per_sec" | "uops_per_sec"
                )
            });
            for (_, value) in fields.iter_mut() {
                strip_wall_clock(value);
            }
        }
        Json::Array(items) => {
            for value in items.iter_mut() {
                strip_wall_clock(value);
            }
        }
        _ => {}
    }
}

/// Drops the top-level `spans` key so the rest of the report can be
/// compared against the pre-tracing pins.
fn strip_spans(json: &mut Json) {
    if let Json::Object(fields) = json {
        fields.retain(|(key, _)| key != "spans");
    }
}

/// Runs `driver` under a fresh recorder at the given jobs setting and
/// hashes the canonicalized report encoding, with and without the span
/// tree.
fn canonical_report_hashes<T>(jobs: usize, driver: impl Fn() -> Result<T, Error>) -> (u64, u64) {
    par::set_jobs(jobs);
    recorder::install(Settings {
        sample_period: 256,
        series_capacity: 128,
    });
    driver().expect("quick-scale drivers run");
    let collector = recorder::finish().expect("recorder was installed");
    par::set_jobs(0);
    let mut report = build_report(&collector);
    strip_wall_clock(&mut report);
    let full = fnv1a(report.encode().as_bytes());
    strip_spans(&mut report);
    let sans_spans = fnv1a(report.encode().as_bytes());
    (full, sans_spans)
}

#[test]
fn fig6_report_matches_the_golden_hashes() {
    let _guard = jobs_lock();
    for jobs in [1, 4] {
        let (hash, sans_spans) =
            canonical_report_hashes(jobs, || experiments::fig6(Scale::quick()));
        assert_eq!(
            sans_spans, PRE_TRACING_FIG6_REPORT_FNV1A,
            "fig6 report (spans dropped) drifted from the pre-tracing golden at jobs={jobs}: \
             got {sans_spans:#018x}, pinned {PRE_TRACING_FIG6_REPORT_FNV1A:#018x}"
        );
        assert_eq!(
            hash, FIG6_REPORT_FNV1A,
            "fig6 report drifted from the golden at jobs={jobs}: \
             got {hash:#018x}, pinned {FIG6_REPORT_FNV1A:#018x}"
        );
    }
}

#[test]
fn table3_report_matches_the_golden_hashes() {
    let _guard = jobs_lock();
    for jobs in [1, 4] {
        let (hash, sans_spans) =
            canonical_report_hashes(jobs, || experiments::table3(Scale::quick()));
        assert_eq!(
            sans_spans, PRE_TRACING_TABLE3_REPORT_FNV1A,
            "table3 report (spans dropped) drifted from the pre-tracing golden at jobs={jobs}: \
             got {sans_spans:#018x}, pinned {PRE_TRACING_TABLE3_REPORT_FNV1A:#018x}"
        );
        assert_eq!(
            hash, TABLE3_REPORT_FNV1A,
            "table3 report drifted from the golden at jobs={jobs}: \
             got {hash:#018x}, pinned {TABLE3_REPORT_FNV1A:#018x}"
        );
    }
}

#[test]
fn empty_fault_plan_reproduces_the_clean_baseline() {
    let rows = efficiency_summary_faulted(Scale::quick(), &FaultPlan::none())
        .expect("empty plan runs clean");
    assert!(
        (rows[0].efficiency - 1.728).abs() < 1e-3,
        "faulted-path baseline drifted to {}",
        rows[0].efficiency
    );
}
