//! Integration tests: the paper's headline results hold end-to-end at the
//! quick experiment scale (shape, not absolute equality).

use penelope::experiments::{self, Scale};

#[test]
fn figure_1_saw_tooth_accumulates_damage() {
    let series = experiments::fig1().expect("valid model");
    let peak = series.iter().map(|(_, n)| *n).fold(0.0, f64::max);
    let last = series.last().expect("non-empty").1;
    assert!(peak > 0.2, "stress accumulates");
    assert!(last < peak, "the series ends inside a recovery phase");
}

#[test]
fn motivation_statistics_match_the_paper() {
    let m = experiments::motivation(Scale::quick()).expect("quick scale runs");
    // §1.1: carry-in "0" more than 90% of the time.
    assert!(m.carry_in_zero > 0.90, "carry-in zero {}", m.carry_in_zero);
    // §1.1: integer register file bias between ~65% and ~90% for all bits.
    assert!(
        m.int_bias_min > 0.55 && m.int_bias_max < 0.97,
        "int bias {} .. {}",
        m.int_bias_min,
        m.int_bias_max
    );
    // §4.5: some scheduler bits are biased almost 100%.
    assert!(m.sched_worst_bias > 0.95);
    // §4.3: uniform distribution puts per-adder utilization near 21%.
    assert!(
        (0.10..=0.35).contains(&m.adder_util_uniform),
        "uniform adder utilization {}",
        m.adder_util_uniform
    );
    // Prioritized allocation spreads utilization (11-30% in the paper).
    let (lo, hi) = m.adder_util_prioritized;
    assert!(hi > lo, "priorities must skew utilization");
}

#[test]
fn figure_4_best_pair_is_1_plus_8() {
    let pairs = experiments::fig4().expect("fixed adder");
    assert_eq!(pairs.len(), 28);
    let best = pairs
        .iter()
        .min_by(|a, b| {
            (a.narrow_fully_stressed, a.pair.latch_imbalance())
                .partial_cmp(&(b.narrow_fully_stressed, b.pair.latch_imbalance()))
                .expect("finite")
        })
        .expect("non-empty");
    assert_eq!(best.pair.label(), "1+8");
    assert!(best.narrow_fully_stressed < 0.01);
}

#[test]
fn figure_5_guardbands_shrink_with_idle_healing() {
    let rows = experiments::fig5(Scale::quick()).expect("quick scale runs");
    assert_eq!(rows.len(), 4);
    // Real inputs pay a large guardband; healed scenarios pay much less,
    // decreasing with utilization (paper: 20% / 7.4% / 5.8% / ~4%).
    assert!(
        rows[0].guardband > 0.12,
        "real inputs: {}",
        rows[0].guardband
    );
    assert!(rows[1].guardband < rows[0].guardband / 2.0);
    assert!(rows[2].guardband < rows[1].guardband);
    assert!(rows[3].guardband < rows[2].guardband);
    assert!(rows[3].guardband >= 0.02, "never below the floor");
}

#[test]
fn figure_6_isv_balances_both_register_files() {
    let f = experiments::fig6(Scale::quick()).expect("quick scale runs");
    // Paper: INT 89.9% -> 48.5%, FP 84.2% -> 45.5% (worst bias).
    assert!(f.int_baseline_worst() > 0.80);
    assert!(f.int_isv_worst() < f.int_baseline_worst() - 0.15);
    assert!(f.fp_baseline_worst() > 0.80);
    assert!(f.fp_isv_worst() < f.fp_baseline_worst() - 0.10);
    // §4.4: most balancing writes find a port (92% / 86% in the paper).
    assert!(f.int_port_rate > 0.70, "int port rate {}", f.int_port_rate);
    assert!(f.fp_port_rate > 0.60, "fp port rate {}", f.fp_port_rate);
}

#[test]
fn figure_8_scheduler_worst_bias_drops_toward_occupancy() {
    let f = experiments::fig8(Scale::quick()).expect("quick scale runs");
    assert!(f.worst_baseline > 0.95, "baseline {}", f.worst_baseline);
    // Paper: ~100% -> 63.2%; the floor is set by the unprotectable valid
    // bit, whose duty equals the occupancy.
    assert!(f.worst_protected < 0.80, "protected {}", f.worst_protected);
    assert!(f.worst_protected >= f.occupancy - 0.1);
}

#[test]
fn efficiency_ordering_matches_section_4() {
    let rows = experiments::efficiency_summary(Scale::quick()).expect("quick scale runs");
    let by_name = |needle: &str| {
        rows.iter()
            .find(|r| r.name.contains(needle))
            .unwrap_or_else(|| panic!("missing row {needle}"))
    };
    let baseline = by_name("baseline");
    let invert = by_name("invert");
    assert!((baseline.efficiency - 1.728).abs() < 1e-3);
    assert!((invert.efficiency - 1.41).abs() < 0.02);
    for penelope_row in rows.iter().filter(|r| r.name.contains("Penelope")) {
        assert!(
            penelope_row.efficiency < invert.efficiency,
            "{} at {:.3} should beat periodic inversion",
            penelope_row.name,
            penelope_row.efficiency
        );
    }
}

#[test]
fn whole_processor_beats_the_baseline_by_a_wide_margin() {
    let t = experiments::table4(Scale::quick()).expect("quick scale runs");
    assert_eq!(t.blocks.len(), 5);
    // Paper: 1.28 vs 1.73, with combined CPI 1.007 and max guardband from
    // the adder. The quick scale (8k uops/trace) carries warm-up noise —
    // short runs overstate both CPI loss and the FP file's residual bias —
    // so the bound here is loose; EXPERIMENTS.md records the standard-scale
    // result (~1.33).
    assert!(t.efficiency < 1.55, "Penelope efficiency {}", t.efficiency);
    assert!((t.baseline_efficiency - 1.728).abs() < 1e-3);
    assert!(
        t.efficiency < t.baseline_efficiency - 0.2,
        "must beat the baseline by a wide margin"
    );
    assert!(t.combined_cpi < 1.06, "combined CPI {}", t.combined_cpi);
    assert!(t.processor.guardband() < 0.12);
    // Caches reach the guardband floor neighborhood.
    let dl0 = &t.blocks.iter().find(|(n, _)| n == "DL0").expect("DL0").1;
    assert!(dl0.guardband() < 0.05, "DL0 guardband {}", dl0.guardband());
}

#[test]
fn table_3_single_geometry_sanity() {
    // The full Table 3 sweep runs in the bench binary; here one geometry
    // checks the qualitative claims: losses are small and the dynamic
    // scheme does not lose more than LineFixed.
    use penelope::cache_aware::SchemeKind;
    use penelope::processor::{build, PenelopeConfig};
    use tracegen::suite::Suite;
    use tracegen::trace::TraceSpec;

    let cpi_for = |scheme: SchemeKind| {
        let config = PenelopeConfig {
            dl0_scheme: scheme,
            dtlb_scheme: SchemeKind::Baseline,
            ..PenelopeConfig::default()
        };
        let (mut pipe, mut hooks) = build(&config).expect("valid config");
        let mut cycles = 0;
        let mut uops = 0;
        for idx in 0..2 {
            let r = pipe.run(
                TraceSpec::new(Suite::Office, idx).generate(15_000),
                &mut hooks,
            );
            cycles += r.cycles;
            uops += r.uops;
        }
        cycles as f64 / uops as f64
    };

    let baseline = cpi_for(SchemeKind::Baseline);
    let line_fixed = cpi_for(SchemeKind::line_fixed_50());
    let dynamic = cpi_for(SchemeKind::line_dynamic_60(0.02, 1_000));
    let lf_loss = line_fixed / baseline - 1.0;
    let dyn_loss = dynamic / baseline - 1.0;
    assert!(lf_loss < 0.06, "LineFixed loss {lf_loss}");
    assert!(
        dyn_loss <= lf_loss + 0.005,
        "dynamic {dyn_loss} vs fixed {lf_loss}"
    );
}
