//! Tracing-span integration (DESIGN.md §15): the cycle-domain span tree
//! must be byte-identical at any `--jobs` setting, worker snapshots must
//! round-trip span data exactly through the journal codec, and the live
//! event stream must emit schema-valid lines covering the whole sweep
//! lifecycle — heartbeats, cell completions, retries and quarantines.

use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

use penelope::error::Error;
use penelope::experiments::{self, Scale};
use penelope::par;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::span::{self, cycle_spans_json};
use penelope_telemetry::{decode_snapshot, encode_snapshot, Json};

/// Serializes tests in this binary: the jobs count and the event stream
/// are process-global.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn global_lock() -> MutexGuard<'static, ()> {
    GLOBAL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs fig6 under a fresh recorder at the given jobs setting and returns
/// the encoded cycle-domain span tree (names, parents, cycles, uops — no
/// wall-clock fields).
fn span_tree(jobs: usize) -> String {
    par::set_jobs(jobs);
    recorder::install(Settings {
        sample_period: 256,
        series_capacity: 128,
    });
    experiments::fig6(Scale::quick()).expect("quick fig6 runs");
    let collector = recorder::finish().expect("recorder was installed");
    par::set_jobs(0);
    cycle_spans_json(&collector.spans).encode()
}

#[test]
fn cycle_domain_span_tree_is_byte_identical_across_jobs() {
    let _guard = global_lock();
    let lone = span_tree(1);
    let four = span_tree(4);
    assert!(
        lone.contains("driver: fig6"),
        "driver span missing from the tree: {lone}"
    );
    assert!(
        lone.contains("cell"),
        "sweep-cell spans missing from the tree: {lone}"
    );
    assert_eq!(
        lone, four,
        "the cycle-domain span tree depends on the jobs setting"
    );
}

#[test]
fn snapshots_round_trip_span_data_exactly() {
    let _guard = global_lock();
    recorder::install(Settings::default());
    let handle = recorder::worker_handle();
    let ((), snapshot) = handle.record_cell(|| {
        let _outer = penelope_telemetry::span!("outer");
        {
            let _inner = penelope_telemetry::span!("inner");
            recorder::record_run(500, 100);
        }
        recorder::record_run(250, 50);
    });
    let _ = recorder::finish();
    let snapshot = snapshot.expect("recorder was installed");
    assert!(
        snapshot.spans.len() >= 2,
        "expected the nested spans in the snapshot: {:?}",
        snapshot.spans
    );
    let decoded = decode_snapshot(&encode_snapshot(&snapshot)).expect("codec round-trips");
    assert_eq!(
        decoded.spans, snapshot.spans,
        "span records drifted through the journal codec"
    );
}

/// A `Write` handle into a shared buffer, so the test can read back what
/// the stream sink wrote from worker threads.
#[derive(Clone, Default)]
struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn live_stream_events_are_schema_valid_and_cover_the_sweep_lifecycle() {
    let _guard = global_lock();
    let buffer = SharedBuffer::default();
    span::set_stream(Some(Box::new(buffer.clone())));
    par::set_jobs(2);
    let results = par::run_cells_named("stream-probe", 4, |cell| {
        if cell.index == 3 {
            Err(Error::Config {
                message: "stream-probe planted failure".to_string(),
            })
        } else {
            Ok(cell.index.to_string())
        }
    });
    par::set_jobs(0);
    span::set_stream(None);
    assert_eq!(
        results.iter().filter(|r| r.is_ok()).count(),
        3,
        "healthy cells must survive the planted failure"
    );

    let raw = buffer
        .0
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    let raw = String::from_utf8(raw).expect("stream is UTF-8");
    let mut kinds = Vec::new();
    for line in raw.lines() {
        let event = penelope_telemetry::json::parse(line)
            .unwrap_or_else(|err| panic!("unparseable stream line {line:?}: {err}"));
        span::validate_stream_event(&event)
            .unwrap_or_else(|err| panic!("schema-invalid stream line {line:?}: {err}"));
        kinds.push(
            event
                .get("event")
                .and_then(Json::as_str)
                .expect("validated events carry a kind")
                .to_string(),
        );
    }
    for expected in [
        "heartbeat",
        "cell-start",
        "cell-complete",
        "retry",
        "quarantine",
    ] {
        assert!(
            kinds.iter().any(|kind| kind == expected),
            "no {expected} event in the stream: {kinds:?}"
        );
    }
}
