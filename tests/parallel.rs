//! Integration tests for the parallel sweep engine's determinism
//! contract: a `--jobs N` run must be indistinguishable from a `--jobs 1`
//! run except in wall-clock fields.
//!
//! The byte-identity pins are the load-bearing ones: they canonicalize
//! full run reports (dropping only `wall_seconds` / `cycles_per_sec` /
//! `uops_per_sec`) and compare the serial and parallel encodings as
//! strings. Any completion-order leakage — a merge keyed on finish time,
//! a float sum grouped differently, a phase recorded on the wrong
//! recorder — shows up as a byte diff here before it can corrupt a
//! reproduced figure.
//!
//! The `JOBS_LOCK` mutex serializes tests that touch the process-global
//! jobs setting; the contract itself makes cross-test interference
//! harmless (outputs are identical at any setting), but the lock keeps
//! each assertion about a *specific* setting honest.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use penelope::error::Error;
use penelope::experiments::{self, Scale};
use penelope::fault::FaultPlan;
use penelope::par;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, Json};

static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn jobs_lock() -> MutexGuard<'static, ()> {
    JOBS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn settings() -> Settings {
    Settings {
        sample_period: 256,
        series_capacity: 128,
    }
}

/// Strips the report's wall-clock fields — everything else must be
/// byte-identical across jobs settings.
fn canonicalize(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "wall_seconds" | "cycles_per_sec" | "uops_per_sec"
                )
            });
            for (_, value) in fields.iter_mut() {
                canonicalize(value);
            }
        }
        Json::Array(items) => {
            for value in items.iter_mut() {
                canonicalize(value);
            }
        }
        _ => {}
    }
}

/// Runs `driver` under a fresh recorder at the given jobs setting and
/// returns the canonicalized report encoding plus the driver's value.
fn report_at_jobs<T>(jobs: usize, driver: impl Fn() -> Result<T, Error>) -> (String, T) {
    par::set_jobs(jobs);
    recorder::install(settings());
    let value = driver().expect("quick-scale drivers run");
    let collector = recorder::finish().expect("recorder was installed");
    par::set_jobs(0);
    let mut report = build_report(&collector);
    canonicalize(&mut report);
    (report.encode(), value)
}

#[test]
fn table3_reports_are_byte_identical_at_jobs_1_and_4() {
    let _guard = jobs_lock();
    let (serial_report, serial) = report_at_jobs(1, || experiments::table3(Scale::quick()));
    let (parallel_report, parallel) = report_at_jobs(4, || experiments::table3(Scale::quick()));
    assert_eq!(
        serial.rows, parallel.rows,
        "result rows must not depend on jobs"
    );
    assert_eq!(
        serial_report, parallel_report,
        "table3 telemetry must be byte-identical modulo wall-clock fields"
    );
    assert!(
        serial_report.contains("table3: DL0 8-way 32KB"),
        "phase stream went missing from the canonicalized report"
    );
}

#[test]
fn fig6_reports_are_byte_identical_at_jobs_1_and_4() {
    let _guard = jobs_lock();
    let (serial_report, serial) = report_at_jobs(1, || experiments::fig6(Scale::quick()));
    let (parallel_report, parallel) = report_at_jobs(4, || experiments::fig6(Scale::quick()));
    assert_eq!(serial, parallel, "fig6 results must not depend on jobs");
    assert_eq!(
        serial_report, parallel_report,
        "fig6 telemetry must be byte-identical modulo wall-clock fields"
    );
}

#[test]
fn nested_driver_reports_are_byte_identical_at_jobs_1_and_4() {
    // efficiency_summary nests engine grids (its cells call fig6/fig8,
    // which run their own grids), so it exercises recorder inheritance
    // two levels deep.
    let _guard = jobs_lock();
    let (serial_report, serial) =
        report_at_jobs(1, || experiments::efficiency_summary(Scale::quick()));
    let (parallel_report, parallel) =
        report_at_jobs(4, || experiments::efficiency_summary(Scale::quick()));
    assert_eq!(serial, parallel);
    assert_eq!(serial_report, parallel_report);
}

#[test]
fn merged_telemetry_is_invariant_under_seeded_completion_shuffles() {
    // Property-style pin: whatever (seeded) completion order the workers
    // produce, the merged report equals the serial one. Per-cell delays
    // come from an LCG so each seed exercises a different finish order.
    let _guard = jobs_lock();
    const CELLS: usize = 12;
    let run = |seed: u64, jobs: usize| -> String {
        let mut state = seed;
        let delays: Vec<u64> = (0..CELLS)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % 7
            })
            .collect();
        recorder::install(settings());
        let results = par::run_cells_with_jobs(jobs, CELLS, |cell| {
            if jobs > 1 {
                std::thread::sleep(Duration::from_millis(delays[cell.index]));
            }
            recorder::phase(&format!("cell {}", cell.index), || {
                recorder::record_run((cell.index as u64 + 1) * 10, cell.index as u64 + 1);
            });
            Ok(cell.index)
        });
        assert!(results.iter().all(Result::is_ok));
        let collector = recorder::finish().expect("recorder was installed");
        let mut report = build_report(&collector);
        canonicalize(&mut report);
        report.encode()
    };
    let reference = run(0, 1);
    for seed in 1..=6 {
        assert_eq!(
            run(seed, 4),
            reference,
            "completion order leaked (seed {seed})"
        );
    }
}

#[test]
fn cell_errors_are_deterministic_at_any_jobs() {
    // The lowest-indexed quarantine wins no matter which worker saw its
    // cell first — a failing sweep reports the same thing serial or
    // parallel. Persistent errors now surface as supervised quarantines
    // carrying the retry count.
    for jobs in [1, 2, 8] {
        let result: Result<Vec<()>, Error> = par::try_cells(10, |cell| {
            if cell.index >= 4 {
                Err(Error::config(format!("cell {} rejected", cell.index)))
            } else {
                Ok(())
            }
        });
        match result {
            Err(Error::Quarantined {
                sweep,
                cell,
                attempts,
                message,
            }) => {
                assert_eq!(sweep, "sweep", "jobs={jobs}");
                assert_eq!(cell, 4, "jobs={jobs}");
                assert_eq!(attempts, 2, "jobs={jobs}");
                assert!(
                    message.contains("cell 4 rejected"),
                    "jobs={jobs}: {message}"
                );
            }
            other => panic!("expected the index-4 quarantine at jobs={jobs}, got {other:?}"),
        }
    }
}

#[test]
fn faulted_runs_are_unaffected_by_the_jobs_setting() {
    // Fault injection and parallelism compose: the same seeded plan
    // produces the same outcome (rows or typed error) at any jobs.
    let _guard = jobs_lock();
    let plan = FaultPlan::random(7);
    par::set_jobs(1);
    let serial = experiments::efficiency_summary_faulted(Scale::quick(), &plan);
    par::set_jobs(4);
    let parallel = experiments::efficiency_summary_faulted(Scale::quick(), &plan);
    par::set_jobs(0);
    assert_eq!(serial, parallel);
}

#[test]
#[ignore = "wall-clock benchmark; run with: cargo test --release --test parallel -- --ignored"]
fn table3_thorough_parallel_speedup_is_at_least_2x() {
    // The acceptance benchmark: table3 at thorough scale with all cores
    // must be at least 2x faster than --jobs 1. Wall-clock sensitive, so
    // it is opt-in (CI machines with throttled or single cores would
    // flake); the byte-identity tests above cover correctness.
    let _guard = jobs_lock();
    let cores = par::available_parallelism();
    if cores < 2 {
        eprintln!("single-core machine; speedup benchmark has nothing to measure");
        return;
    }
    let time = |jobs: usize| {
        par::set_jobs(jobs);
        let start = std::time::Instant::now();
        experiments::table3(Scale::thorough()).expect("thorough table3 runs");
        let elapsed = start.elapsed();
        par::set_jobs(0);
        elapsed
    };
    let serial = time(1);
    let parallel = time(cores);
    assert!(
        parallel.as_secs_f64() * 2.0 <= serial.as_secs_f64(),
        "expected >=2x speedup: serial {serial:?}, parallel {parallel:?} on {cores} cores"
    );
}
