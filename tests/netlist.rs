//! Integration tests for the arbitrary-netlist study: the differential
//! oracle (a BLIF-exported Ladner-Fischer adder must age bit-identically
//! to the legacy in-memory path, and DCE/partitioning must never change
//! aging results), byte-identity of the driver's report across `--jobs`
//! settings and crash-and-resume, and golden report-hash pins for the
//! bundled decoder and multiplier fixtures at standard scale.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use gatesim::adder::LadnerFischerAdder;
use gatesim::blif;
use gatesim::passes::{self, MergedStress, PartitionStress, PassConfig};
use gatesim::pmos::PmosTable;
use gatesim::stress::StressTracker;
use nbti_model::guardband::GuardbandModel;
use penelope::error::Error;
use penelope::experiments::Scale;
use penelope::journal::{CheckpointContext, JournalHeader};
use penelope::netlist_study::{self, stimulus, NetlistConfig, NetlistSource, NetlistSummary};
use penelope::obs;
use penelope::par;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, Json};
use proptest::prelude::*;

/// Serializes tests touching the process-global jobs/checkpoint slots.
static NETLIST_LOCK: Mutex<()> = Mutex::new(());

fn netlist_lock() -> MutexGuard<'static, ()> {
    NETLIST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn settings() -> Settings {
    Settings {
        sample_period: 256,
        series_capacity: 128,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("penelope-netlist-tests");
    fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

fn header() -> JournalHeader {
    JournalHeader {
        binary: "netlist".to_string(),
        scale: obs::scale_json(&Scale::quick()),
        fault_seed: 0,
        retries: 1,
        cell_budget: None,
    }
}

/// Strips the report's wall-clock fields — everything else must be
/// byte-identical across jobs settings and interruption.
fn canonicalize(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "wall_seconds" | "cycles_per_sec" | "uops_per_sec"
                )
            });
            for (_, value) in fields.iter_mut() {
                canonicalize(value);
            }
        }
        Json::Array(items) => {
            for value in items.iter_mut() {
                canonicalize(value);
            }
        }
        _ => {}
    }
}

/// FNV-1a 64-bit (same hash as `tests/golden.rs`, so pins are easy to
/// regenerate: print the hash and paste).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the netlist driver at the given jobs setting (optionally with a
/// checkpoint context armed) and returns the canonicalized report
/// encoding plus the summary.
fn run_study(
    config: &NetlistConfig,
    jobs: usize,
    context: Option<CheckpointContext>,
) -> (String, NetlistSummary) {
    par::set_jobs(jobs);
    par::set_checkpoint(context);
    recorder::install(settings());
    let result: Result<NetlistSummary, Error> = netlist_study::netlist_study(config);
    let collector = recorder::finish().expect("recorder was installed");
    par::set_checkpoint(None);
    par::set_jobs(0);
    let summary = result.expect("the study runs");
    let mut report = build_report(&collector);
    canonicalize(&mut report);
    (report.encode(), summary)
}

/// Simulates a crash mid-sweep: keeps the journal header plus the first
/// `keep` data records, as a SIGKILL between atomic appends would.
fn truncate_journal(path: &PathBuf, keep: usize) -> usize {
    let text = fs::read_to_string(path).expect("journal exists");
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > keep + 1,
        "journal too short to truncate: {} lines",
        lines.len()
    );
    lines.truncate(keep + 1);
    let kept = lines.len() - 1;
    let mut out = lines.join("\n");
    out.push('\n');
    fs::write(path, out).expect("journal is writable");
    kept
}

// ------------------------------------------------- differential oracle

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Ladner-Fischer adder exported to BLIF and re-imported through
    /// the full pass pipeline ages *bit-identically* to the legacy
    /// in-memory path, under arbitrary vector sets and partition counts —
    /// and DCE/partitioning never change any transistor's duty.
    #[test]
    fn exported_adder_ages_identically_to_the_legacy_path(
        ops in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>(), 1u64..8),
            1..40,
        ),
        partitions in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let adder = LadnerFischerAdder::new(8);
        let vectors: Vec<(Vec<bool>, u64)> = ops
            .iter()
            .map(|&(a, b, cin, d)| (adder.input_assignment(a & 0xFF, b & 0xFF, cin), d))
            .collect();

        // Legacy path: a global tracker over the in-memory netlist.
        let mut tracker = StressTracker::new(adder.netlist());
        for (assignment, duration) in &vectors {
            tracker.apply(adder.netlist(), assignment, *duration);
        }

        // BLIF path: export, re-import, compile (DCE + mapping +
        // partitioning), accumulate each partition, merge.
        let text = blif::export(adder.netlist(), "lf8");
        let model = blif::parse(&text).expect("exported adders parse");
        let config = PassConfig {
            dce: true,
            fanout_threshold: PmosTable::DEFAULT_WIDE_FANOUT,
            partitions,
            seed,
        };
        let compiled = passes::compile(model.into_netlist(), &config).expect("compiles");
        prop_assert_eq!(compiled.dce.removed_gates, 0, "the adder is fully live");
        let cells: Vec<PartitionStress> = (0..partitions)
            .map(|part| {
                passes::accumulate_partition(
                    &compiled.netlist,
                    &compiled.table,
                    &compiled.partition,
                    part,
                    &vectors,
                )
                .expect("stimulus arity matches")
            })
            .collect();
        let merged = MergedStress::merge(&compiled.table, &compiled.partition, &cells)
            .expect("all partitions present");

        // Bit-for-bit: every transistor, plus the derived guardband.
        prop_assert_eq!(compiled.table.len(), tracker.table().len());
        prop_assert_eq!(merged.observed_time(), tracker.observed_time());
        for flat in 0..compiled.table.len() {
            prop_assert_eq!(
                merged.duty_of(flat).fraction().to_bits(),
                tracker.duty_of(flat).fraction().to_bits(),
                "transistor {} (partitions={}, seed={})", flat, partitions, seed
            );
        }
        let model = GuardbandModel::paper_calibrated();
        let narrow_worst = compiled
            .table
            .transistors()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.width == gatesim::pmos::WidthClass::Narrow)
            .map(|(i, _)| merged.duty_of(i))
            .fold(nbti_model::duty::Duty::ZERO, |w, d| if d > w { d } else { w });
        prop_assert_eq!(
            model.guardband(narrow_worst),
            tracker.guardband(adder.netlist(), &model)
        );
    }
}

/// At the driver level: the exported-adder study reports the same aging
/// whatever the pass pipeline (DCE on/off, 1 vs 4 partitions) — passes
/// reorganize the work, never the physics.
#[test]
fn pass_pipeline_never_changes_driver_aging_results() {
    let _guard = netlist_lock();
    let base = NetlistConfig {
        source: NetlistSource::AdderExport,
        ..NetlistConfig::for_scale(Scale::quick())
    };
    let mut minimal = base.clone();
    minimal.passes = PassConfig::parse("map").expect("parses"); // no DCE, 1 partition
    let (_, full) = run_study(&base, 1, None);
    let (_, min) = run_study(&minimal, 1, None);
    assert_eq!(full.worst_duty, min.worst_duty);
    assert_eq!(full.worst_narrow_duty, min.worst_narrow_duty);
    assert_eq!(full.duty_p50.to_bits(), min.duty_p50.to_bits());
    assert_eq!(full.duty_p95.to_bits(), min.duty_p95.to_bits());
    assert_eq!(full.duty_p99.to_bits(), min.duty_p99.to_bits());
    assert_eq!(
        full.worst_vth_shift.to_bits(),
        min.worst_vth_shift.to_bits()
    );
    assert_eq!(full.guardband.to_bits(), min.guardband.to_bits());
    assert_eq!(full.observed_time, min.observed_time);
    assert_eq!(full.transistors, min.transistors, "LF adder is fully live");
}

// ----------------------------------------------------- driver pinning

#[test]
fn netlist_reports_are_byte_identical_across_jobs_settings() {
    let _guard = netlist_lock();
    let config = NetlistConfig::for_scale(Scale::quick());
    let (serial_report, serial) = run_study(&config, 1, None);
    let (parallel_report, parallel) = run_study(&config, 4, None);
    assert_eq!(serial, parallel, "summary must not depend on --jobs");
    assert_eq!(
        serial_report, parallel_report,
        "netlist report differs across jobs outside wall-clock fields"
    );
    assert_eq!(serial.partitions.len(), 4);
    assert!(serial.observed_time > 0);
}

#[test]
fn an_interrupted_netlist_study_resumes_byte_identically() {
    let _guard = netlist_lock();
    let config = NetlistConfig::for_scale(Scale::quick());
    let (baseline_report, baseline) = run_study(&config, 1, None);

    for jobs in [1, 4] {
        let path = tmp_path(&format!("netlist-jobs{jobs}.jsonl"));

        // A clean checkpointed run is indistinguishable from an
        // uncheckpointed one.
        let context = CheckpointContext::create(&path, &header()).expect("journal opens");
        let (full_report, full) = run_study(&config, jobs, Some(context));
        assert_eq!(full, baseline, "jobs={jobs}");
        assert_eq!(full_report, baseline_report, "jobs={jobs}");

        // Crash after two completed partition cells, then resume.
        let kept = truncate_journal(&path, 2);
        let context = CheckpointContext::resume(&path, &header()).expect("resume succeeds");
        assert_eq!(context.restored_cells(), kept, "jobs={jobs}");
        let (resumed_report, resumed) = run_study(&config, jobs, Some(context));
        assert_eq!(resumed, baseline, "jobs={jobs}");
        assert_eq!(
            resumed_report, baseline_report,
            "resumed netlist study must be byte-identical to an uninterrupted run (jobs={jobs})"
        );
    }
}

// --------------------------------------------------------- golden pins
//
// The decoder/multiplier fixture reports at standard scale are pinned by
// hash, `tests/golden.rs` style: any drift in the parser, the pass
// pipeline, the stimulus campaign, the stress accounting or the report
// layout flips the hash. Wall-clock fields are stripped before hashing;
// the pins must hold at `--jobs 1` and `--jobs 4` alike.

const DECODER_REPORT_FNV1A: u64 = 0xa135_be4c_17a1_81db;
const MULTIPLIER_REPORT_FNV1A: u64 = 0x8f60_da64_8348_ddab;

fn golden_config(source: NetlistSource) -> NetlistConfig {
    NetlistConfig {
        source,
        ..NetlistConfig::for_scale(Scale::standard())
    }
}

#[test]
fn decoder_report_matches_the_golden_hash() {
    let _guard = netlist_lock();
    for jobs in [1, 4] {
        let (report, summary) = run_study(&golden_config(NetlistSource::Decoder), jobs, None);
        assert_eq!(summary.model, "decoder4x16");
        let hash = fnv1a(report.as_bytes());
        assert_eq!(
            hash, DECODER_REPORT_FNV1A,
            "decoder report drifted from the golden at jobs={jobs}: \
             got {hash:#018x}, pinned {DECODER_REPORT_FNV1A:#018x}"
        );
    }
}

#[test]
fn multiplier_report_matches_the_golden_hash() {
    let _guard = netlist_lock();
    for jobs in [1, 4] {
        let (report, summary) = run_study(&golden_config(NetlistSource::Multiplier), jobs, None);
        assert_eq!(summary.model, "mul4x4");
        let hash = fnv1a(report.as_bytes());
        assert_eq!(
            hash, MULTIPLIER_REPORT_FNV1A,
            "multiplier report drifted from the golden at jobs={jobs}: \
             got {hash:#018x}, pinned {MULTIPLIER_REPORT_FNV1A:#018x}"
        );
    }
}

// ------------------------------------------------- stimulus guardrails

/// The driver's deterministic campaign is itself pinned: same seed, same
/// vectors; and the vector width always matches the netlist, so the
/// fallible evaluation path never trips on driver-generated stimulus.
#[test]
fn driver_stimulus_fits_every_bundled_source() {
    for source in [
        NetlistSource::Decoder,
        NetlistSource::Multiplier,
        NetlistSource::AdderExport,
    ] {
        let model = blif::parse(&source.blif()).expect("bundled sources parse");
        let inputs = model.netlist().inputs().len();
        for (assignment, duration) in stimulus(inputs, 16, 99) {
            assert_eq!(assignment.len(), inputs);
            assert!((1..=7).contains(&duration));
            model
                .netlist()
                .try_evaluate(&assignment)
                .expect("driver stimulus always fits");
        }
    }
}
