//! Integration tests for crash-safe sweeps: a checkpointed run that is
//! interrupted mid-sweep and resumed must produce a report byte-identical
//! (modulo wall-clock fields) to an uninterrupted run, at any jobs
//! setting — and a corrupted journal must refuse resume with a typed
//! error instead of panicking or silently replaying bad state.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use penelope::error::Error;
use penelope::experiments::{self, Scale};
use penelope::journal::{CheckpointContext, JournalHeader};
use penelope::obs;
use penelope::par;
use penelope_telemetry::recorder::{self, Settings};
use penelope_telemetry::{build_report, Json};

/// Serializes tests touching the process-global checkpoint slot and jobs
/// setting.
static CHECKPOINT_LOCK: Mutex<()> = Mutex::new(());

fn checkpoint_lock() -> MutexGuard<'static, ()> {
    CHECKPOINT_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn settings() -> Settings {
    Settings {
        sample_period: 256,
        series_capacity: 128,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("penelope-checkpoint-tests");
    fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

fn header(binary: &str) -> JournalHeader {
    JournalHeader {
        binary: binary.to_string(),
        scale: obs::scale_json(&Scale::quick()),
        fault_seed: 0,
        retries: 1,
        cell_budget: None,
    }
}

/// Strips the report's wall-clock fields — everything else must be
/// byte-identical across interruption and jobs settings.
fn canonicalize(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "wall_seconds" | "cycles_per_sec" | "uops_per_sec"
                )
            });
            for (_, value) in fields.iter_mut() {
                canonicalize(value);
            }
        }
        Json::Array(items) => {
            for value in items.iter_mut() {
                canonicalize(value);
            }
        }
        _ => {}
    }
}

/// Runs `driver` at the given jobs setting with the given checkpoint
/// context armed (or none) and returns the canonicalized report encoding
/// plus the driver's value.
fn run_driver<T>(
    jobs: usize,
    context: Option<CheckpointContext>,
    driver: impl Fn() -> Result<T, Error>,
) -> (String, T) {
    par::set_jobs(jobs);
    par::set_checkpoint(context);
    recorder::install(settings());
    let value = driver().expect("quick-scale drivers run");
    let collector = recorder::finish().expect("recorder was installed");
    par::set_checkpoint(None);
    par::set_jobs(0);
    let mut report = build_report(&collector);
    canonicalize(&mut report);
    (report.encode(), value)
}

/// Simulates a crash mid-sweep: keeps the journal header plus the first
/// `keep` data records and discards the rest, as a SIGKILL between
/// atomic appends would. Returns how many data records remain.
fn truncate_journal(path: &PathBuf, keep: usize) -> usize {
    let text = fs::read_to_string(path).expect("journal exists");
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > keep + 1,
        "journal too short to truncate: {} lines",
        lines.len()
    );
    lines.truncate(keep + 1);
    let kept = lines.len() - 1;
    let mut out = lines.join("\n");
    out.push('\n');
    fs::write(path, out).expect("journal is writable");
    kept
}

#[test]
fn interrupted_table3_resumes_byte_identically_at_any_jobs() {
    let _guard = checkpoint_lock();
    let (baseline_report, baseline) = run_driver(1, None, || experiments::table3(Scale::quick()));

    for jobs in [1, 4] {
        let path = tmp_path(&format!("table3-jobs{jobs}.jsonl"));

        // A clean checkpointed run must be indistinguishable from an
        // uncheckpointed one — durability adds no report noise.
        let context = CheckpointContext::create(&path, &header("table3")).expect("journal opens");
        let (full_report, full) =
            run_driver(jobs, Some(context), || experiments::table3(Scale::quick()));
        assert_eq!(full.rows, baseline.rows, "jobs={jobs}");
        assert_eq!(full_report, baseline_report, "jobs={jobs}");

        // Crash after two completed cells, then resume.
        let kept = truncate_journal(&path, 2);
        let context = CheckpointContext::resume(&path, &header("table3")).expect("resume succeeds");
        assert_eq!(context.restored_cells(), kept, "jobs={jobs}");
        let (resumed_report, resumed) =
            run_driver(jobs, Some(context), || experiments::table3(Scale::quick()));
        assert_eq!(resumed.rows, baseline.rows, "jobs={jobs}");
        assert_eq!(
            resumed_report, baseline_report,
            "resumed table3 must be byte-identical to an uninterrupted run (jobs={jobs})"
        );
    }
}

#[test]
fn interrupted_fig6_resumes_byte_identically_at_any_jobs() {
    let _guard = checkpoint_lock();
    let (baseline_report, baseline) = run_driver(1, None, || experiments::fig6(Scale::quick()));

    for jobs in [1, 4] {
        let path = tmp_path(&format!("fig6-jobs{jobs}.jsonl"));
        let context = CheckpointContext::create(&path, &header("fig6")).expect("journal opens");
        let (full_report, full) =
            run_driver(jobs, Some(context), || experiments::fig6(Scale::quick()));
        assert_eq!(full, baseline, "jobs={jobs}");
        assert_eq!(full_report, baseline_report, "jobs={jobs}");

        let kept = truncate_journal(&path, 1);
        let context = CheckpointContext::resume(&path, &header("fig6")).expect("resume succeeds");
        assert_eq!(context.restored_cells(), kept, "jobs={jobs}");
        let (resumed_report, resumed) =
            run_driver(jobs, Some(context), || experiments::fig6(Scale::quick()));
        assert_eq!(resumed, baseline, "jobs={jobs}");
        assert_eq!(
            resumed_report, baseline_report,
            "resumed fig6 must be byte-identical to an uninterrupted run (jobs={jobs})"
        );
    }
}

/// Writes a small but fully valid journal (header + two sealed records)
/// to corrupt in the refusal tests below.
fn valid_journal(name: &str) -> PathBuf {
    let path = tmp_path(name);
    let context = CheckpointContext::create(&path, &header("fig6")).expect("journal opens");
    context.append("fig6", 0, Json::UInt(1), None);
    context.append("fig6", 1, Json::Float(0.5), None);
    assert!(context.take_fault().is_none(), "appends must succeed");
    path
}

fn resume_error(path: &PathBuf, head: &JournalHeader) -> String {
    match CheckpointContext::resume(path, head) {
        Err(Error::Journal { message }) => message,
        Ok(_) => panic!("resume must refuse a damaged journal"),
        Err(other) => panic!("expected a journal error, got {other:?}"),
    }
}

#[test]
fn a_truncated_record_refuses_resume_with_a_typed_error() {
    let path = valid_journal("corrupt-truncated.jsonl");
    let text = fs::read_to_string(&path).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    let last = lines[lines.len() - 1];
    let mut cut = lines[..lines.len() - 1].join("\n");
    cut.push('\n');
    cut.push_str(&last[..last.len() / 2]);
    cut.push('\n');
    fs::write(&path, cut).expect("journal is writable");
    let message = resume_error(&path, &header("fig6"));
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("line 3"), "{message}");
}

#[test]
fn a_flipped_hash_refuses_resume_with_a_typed_error() {
    let path = valid_journal("corrupt-hash.jsonl");
    let text = fs::read_to_string(&path).expect("journal exists");
    // Flip one hex digit of the last record's integrity hash.
    let marker = "\"hash\":\"";
    let start = text.rfind(marker).expect("records carry a hash") + marker.len();
    let mut bytes = text.into_bytes();
    bytes[start] = if bytes[start] == b'0' { b'1' } else { b'0' };
    fs::write(&path, bytes).expect("journal is writable");
    let message = resume_error(&path, &header("fig6"));
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("hash"), "{message}");
}

#[test]
fn a_mismatched_header_refuses_resume_with_a_typed_error() {
    let path = valid_journal("corrupt-header.jsonl");

    // Same journal, different fault seed: refuse.
    let mut wrong_seed = header("fig6");
    wrong_seed.fault_seed = 7;
    let message = resume_error(&path, &wrong_seed);
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("fault seed"), "{message}");

    // Same journal, different binary: refuse.
    let message = resume_error(&path, &header("table3"));
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("binary"), "{message}");

    // Same journal, different scale: refuse.
    let mut wrong_scale = header("fig6");
    wrong_scale.scale = obs::scale_json(&Scale::standard());
    let message = resume_error(&path, &wrong_scale);
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("scale"), "{message}");

    // Same journal, different supervisor policy: refuse. A journal of
    // cells that ran under `retries: 1` holds outcomes a zero-retry (or
    // budget-truncated) run might never reproduce.
    let mut wrong_retries = header("fig6");
    wrong_retries.retries = 0;
    let message = resume_error(&path, &wrong_retries);
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("retries"), "{message}");

    let mut wrong_budget = header("fig6");
    wrong_budget.cell_budget = Some(5_000);
    let message = resume_error(&path, &wrong_budget);
    assert!(message.contains("resume refused"), "{message}");
    assert!(message.contains("cell budget"), "{message}");
}

#[test]
fn an_empty_journal_refuses_resume_with_a_typed_error() {
    let path = tmp_path("corrupt-empty.jsonl");
    fs::write(&path, "").expect("journal is writable");
    let message = resume_error(&path, &header("fig6"));
    assert!(message.contains("resume refused"), "{message}");
}
