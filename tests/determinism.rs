//! Integration tests: every experiment is exactly reproducible — traces,
//! scheme randomness and pipeline behaviour are all deterministically
//! seeded.

use penelope::experiments::{self, Scale};
use penelope::processor::{build, PenelopeConfig};
use tracegen::suite::Suite;
use tracegen::trace::{TraceSpec, Workload};

#[test]
fn traces_are_stable_across_reruns() {
    let spec = TraceSpec::new(Suite::Workstation, 7);
    let a: Vec<_> = spec.generate(2_000).collect();
    let b: Vec<_> = spec.generate(2_000).collect();
    assert_eq!(a, b);
}

#[test]
fn workload_population_is_stable() {
    assert_eq!(Workload::full().specs(), Workload::full().specs());
    assert_eq!(Workload::sample(3).specs(), Workload::sample(3).specs());
}

#[test]
fn full_processor_runs_are_bit_identical() {
    let run = || {
        let config = PenelopeConfig::default();
        let (mut pipe, mut hooks) = build(&config).expect("valid config");
        let r = pipe.run(
            TraceSpec::new(Suite::Encoder, 5).generate(20_000),
            &mut hooks,
        );
        let now = pipe.now();
        pipe.parts.int_rf.sync(now);
        (
            r.cycles,
            r.port_issues,
            pipe.parts.dl0.stats().clone(),
            pipe.parts.int_rf.residency().biases(),
        )
    };
    let (c1, p1, s1, b1) = run();
    let (c2, p2, s2, b2) = run();
    assert_eq!(c1, c2);
    assert_eq!(p1, p2);
    assert_eq!(s1, s2);
    assert_eq!(b1, b2);
}

#[test]
fn experiment_drivers_are_reproducible() {
    let a = experiments::fig5(Scale::quick()).expect("quick scale runs");
    let b = experiments::fig5(Scale::quick()).expect("quick scale runs");
    assert_eq!(a, b);
    let f4a = experiments::fig4().expect("fixed adder");
    let f4b = experiments::fig4().expect("fixed adder");
    assert_eq!(f4a, f4b);
}
